//! The write-ahead log backing the durable append path.
//!
//! # Why a physical redo log
//!
//! The engine's `append_subtree` touches many structures in one logical
//! step — list chains, both B+trees, the meta blob — and a crash between
//! any two of those page writes used to leave the index half-applied. The
//! WAL makes the *commit record* the single atomicity point: a
//! transaction's full page images are appended and fsynced here before
//! any of them may reach the database file, and recovery replays exactly
//! the transactions whose commit record survived. Everything before a
//! missing or torn commit record is discarded; replaying the same log
//! twice writes the same bytes twice — idempotent by construction.
//!
//! # On-disk format (`XKWALOG1`)
//!
//! The log lives in its own page file (any [`Pager`]; file-backed WALs
//! use [`WAL_PAGE_SIZE`]). Every physical page ends in the same 8-byte
//! CRC trailer as `XKSTORE2` data pages ([`crate::checksum`]).
//!
//! * **Page 0 — header**: `magic "XKWALOG1" | u64 generation |
//!   u32 db_page_size`, zero-padded, CRC trailer.
//! * **Pages 1.. — data**: `u64 generation | u32 used | <stream bytes>`,
//!   CRC trailer. A data page is written exactly once, by the sync that
//!   seals it; a page whose generation differs from the header's is a
//!   leftover from a previous incarnation of the log and terminates the
//!   scan.
//!
//! The data pages carry one continuous byte stream of length-prefixed,
//! individually checksummed records:
//!
//! ```text
//! | u8 kind | u64 lsn | u32 len | payload[len] | u32 crc |
//! ```
//!
//! with `crc = crc32(kind..payload)`. Kinds: `Begin` (empty payload),
//! `PageImage` (`u32 page_id` + the full stamped physical page), and
//! `Commit` (`u64 epoch`). A record that fails its CRC or runs past the
//! valid stream is the torn tail: the scan truncates there.
//!
//! # Group commit
//!
//! Appends only extend an in-memory buffer under a short mutex — they
//! never touch the file. [`Wal::sync`] drains everything buffered so far
//! into fresh pages and issues **one** fsync; the env's committer thread
//! calls it on a timer, so any number of commits that land within one
//! flush interval share that fsync. A second mutex serializes sync bodies
//! and is *not* held while appenders run, so the fsync never blocks the
//! commit path. Waiters park on a condvar keyed by LSN
//! ([`Wal::wait_durable`]).
//!
//! A failed write or fsync poisons the log: the error is sticky and every
//! later append, sync, or wait surfaces it. There is no retry — the
//! engine treats a broken log as a broken disk.

use crate::checksum::{crc32, stamp_trailer, verify_trailer, TRAILER};
use crate::error::{Result, StorageError};
use crate::pager::{PageId, Pager};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Physical page size of file-backed WALs ([`crate::recovery`] opens WAL
/// files with this size). Pager-backed WALs in tests may use any size.
pub const WAL_PAGE_SIZE: usize = 4096;

const WAL_MAGIC: &[u8; 8] = b"XKWALOG1";
/// Data-page header: u64 generation + u32 used.
const DATA_HEADER: usize = 12;
/// Record header: u8 kind + u64 lsn + u32 len.
const RECORD_HEADER: usize = 13;
/// Trailing CRC of a record.
const RECORD_CRC: usize = 4;

const KIND_BEGIN: u8 = 1;
const KIND_IMAGE: u8 = 2;
const KIND_COMMIT: u8 = 3;

/// One committed transaction reconstructed from the log, in commit order.
#[derive(Debug, Clone)]
pub struct CommittedTxn {
    /// The epoch recorded in the commit record.
    pub epoch: u64,
    /// The commit record's LSN.
    pub lsn: u64,
    /// Full physical page images `(page id, stamped bytes)` in the order
    /// they were logged.
    pub pages: Vec<(u32, Vec<u8>)>,
}

/// Everything a scan of the log recovers.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// The header's generation.
    pub generation: u64,
    /// The database page size the log was written against.
    pub db_page_size: u32,
    /// Committed transactions in log order.
    pub committed: Vec<CommittedTxn>,
    /// True if the scan stopped at a torn tail (an unreadable page, a
    /// record with a bad CRC, or a record cut off mid-stream) rather than
    /// at the clean end of the log.
    pub truncated: bool,
    /// Highest LSN of any intact record (0 if the log is empty).
    pub last_lsn: u64,
}

/// Append-side state: the undrained byte buffer and the LSN counter.
struct WalBuf {
    pending: Vec<u8>,
    next_lsn: u64,
}

/// Sync-side cursor; guarded by the lock that serializes sync bodies.
struct WalCursor {
    generation: u64,
    next_page: u32,
}

/// Durability watermark shared with waiters.
struct WalDurable {
    synced: u64,
    failed: Option<String>,
}

/// A write-ahead log over a shared pager. All operations take `&self`.
pub struct Wal {
    pager: Arc<dyn Pager>,
    page_size: usize,
    db_page_size: u32,
    buf: Mutex<WalBuf>,
    cursor: Mutex<WalCursor>,
    durable: Mutex<WalDurable>,
    synced_cv: Condvar,
    poisoned: AtomicBool,
    commits: AtomicU64,
    syncs: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Wal {
    /// Creates a fresh log (generation 1) on `pager`, which must hold at
    /// least the one page the constructor overwrites as the header.
    pub fn create(pager: Arc<dyn Pager>, db_page_size: u32) -> Result<Wal> {
        Self::init(pager, db_page_size, 1)
    }

    /// Opens a log file after recovery has consumed it: the generation is
    /// bumped past the old one, so every page of the previous incarnation
    /// is dead the moment the new header is durable. A blank or invalid
    /// header starts over at generation 1. Idempotent with respect to a
    /// crash between recovery and this call — the committed transactions
    /// stay replayable until the new header lands.
    pub fn open_or_reinit(pager: Arc<dyn Pager>, db_page_size: u32) -> Result<Wal> {
        let generation = match Self::scan(&*pager)? {
            Some(outcome) => outcome.generation + 1,
            None => 1,
        };
        Self::init(pager, db_page_size, generation)
    }

    fn init(pager: Arc<dyn Pager>, db_page_size: u32, generation: u64) -> Result<Wal> {
        let page_size = pager.page_size();
        assert!(
            page_size > DATA_HEADER + TRAILER + RECORD_HEADER + RECORD_CRC,
            "WAL page size too small"
        );
        let wal = Wal {
            pager,
            page_size,
            db_page_size,
            buf: Mutex::new(WalBuf { pending: Vec::new(), next_lsn: 1 }),
            cursor: Mutex::new(WalCursor { generation, next_page: 1 }),
            durable: Mutex::new(WalDurable { synced: 0, failed: None }),
            synced_cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
            commits: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
        };
        wal.write_header(generation)?;
        Ok(wal)
    }

    fn write_header(&self, generation: u64) -> Result<()> {
        let mut page = vec![0u8; self.page_size];
        page[..8].copy_from_slice(WAL_MAGIC);
        page[8..16].copy_from_slice(&generation.to_le_bytes());
        page[16..20].copy_from_slice(&self.db_page_size.to_le_bytes());
        stamp_trailer(&mut page);
        while self.pager.page_count() == 0 {
            self.pager.grow()?;
        }
        self.pager.write_page(PageId(0), &page)?;
        self.pager.sync()?;
        Ok(())
    }

    /// The database page size this log was opened against.
    pub fn db_page_size(&self) -> u32 {
        self.db_page_size
    }

    /// Commit records appended so far (the group-commit batch numerator).
    pub fn commit_count(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Fsyncs issued so far (the group-commit batch denominator).
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned.load(Ordering::Acquire) {
            let msg = lock(&self.durable)
                .failed
                .clone()
                .unwrap_or_else(|| "unknown failure".into());
            return Err(StorageError::Corrupt(format!("WAL failed: {msg}")));
        }
        Ok(())
    }

    fn poison(&self, err: &StorageError) {
        let mut d = lock(&self.durable);
        if d.failed.is_none() {
            d.failed = Some(err.to_string());
        }
        self.poisoned.store(true, Ordering::Release);
        self.synced_cv.notify_all();
    }

    // xk-analyze: allow(panic_path, reason = "start is pending's length before this record's bytes are pushed, so the CRC slice is in bounds")
    fn append(&self, kind: u8, payload: &[u8]) -> Result<u64> {
        self.check_poisoned()?;
        let mut buf = lock(&self.buf);
        let lsn = buf.next_lsn;
        buf.next_lsn += 1;
        let start = buf.pending.len();
        buf.pending.push(kind);
        buf.pending.extend_from_slice(&lsn.to_le_bytes());
        buf.pending.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.pending.extend_from_slice(payload);
        let crc = crc32(&buf.pending[start..]);
        buf.pending.extend_from_slice(&crc.to_le_bytes());
        Ok(lsn)
    }

    /// Appends a `Begin` record, delimiting a new transaction. Any page
    /// images after an unterminated `Begin` are discarded by the scan.
    pub fn append_begin(&self) -> Result<u64> {
        self.append(KIND_BEGIN, &[])
    }

    /// Appends the full stamped physical image of database page `page_id`.
    pub fn append_image(&self, page_id: u32, image: &[u8]) -> Result<u64> {
        debug_assert_eq!(image.len(), self.db_page_size as usize);
        let mut payload = Vec::with_capacity(4 + image.len());
        payload.extend_from_slice(&page_id.to_le_bytes());
        payload.extend_from_slice(image);
        self.append(KIND_IMAGE, &payload)
    }

    /// Appends the commit record — the transaction's atomicity point.
    /// The transaction is durable once [`Wal::sync`] (or a waiter's
    /// [`Wal::wait_durable`]) covers the returned LSN.
    pub fn append_commit(&self, epoch: u64) -> Result<u64> {
        let lsn = self.append(KIND_COMMIT, &epoch.to_le_bytes())?;
        self.commits.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Drains everything appended so far into fresh pages and fsyncs once;
    /// returns the highest durable LSN. Serialized against other syncs but
    /// never blocks appenders, which is what turns concurrent commits into
    /// one fsync.
    // xk-analyze: allow(io_under_lock, reason = "the sync body is the WAL's serialization point by design; appenders only take the buf lock, which this path holds just long enough to steal the buffer")
    // xk-analyze: protocol(durability_order, sync)
    pub fn sync(&self) -> Result<u64> {
        let cursor = &mut *lock(&self.cursor);
        self.check_poisoned()?;
        let (bytes, upto) = {
            let mut buf = lock(&self.buf);
            (std::mem::take(&mut buf.pending), buf.next_lsn - 1)
        };
        if bytes.is_empty() {
            // Anything at or below `upto` was drained by a previous sync,
            // whose fsync completed before it released the cursor lock.
            return Ok(lock(&self.durable).synced);
        }
        let res = self.write_pages(cursor, &bytes).and_then(|()| self.pager.sync());
        if let Err(e) = res {
            self.poison(&e);
            return Err(e);
        }
        self.syncs.fetch_add(1, Ordering::Relaxed);
        let mut d = lock(&self.durable);
        d.synced = upto;
        self.synced_cv.notify_all();
        Ok(upto)
    }

    // xk-analyze: allow(panic_path, reason = "chunks(cap) yields at most cap bytes per chunk, which fit the page after the header")
    fn write_pages(&self, cursor: &mut WalCursor, bytes: &[u8]) -> Result<()> {
        let cap = self.page_size - DATA_HEADER - TRAILER;
        let mut page = vec![0u8; self.page_size];
        for chunk in bytes.chunks(cap) {
            page.fill(0);
            page[..8].copy_from_slice(&cursor.generation.to_le_bytes());
            page[8..12].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
            page[DATA_HEADER..DATA_HEADER + chunk.len()].copy_from_slice(chunk);
            stamp_trailer(&mut page);
            while self.pager.page_count() <= cursor.next_page {
                self.pager.grow()?;
            }
            self.pager.write_page(PageId(cursor.next_page), &page)?;
            cursor.next_page += 1;
        }
        Ok(())
    }

    /// Blocks until `lsn` is durable (a sync covered it) or the log has
    /// failed. `lsn` 0 is trivially durable.
    // xk-analyze: protocol(durability_order, sync)
    pub fn wait_durable(&self, lsn: u64) -> Result<()> {
        let mut d = lock(&self.durable);
        loop {
            if let Some(msg) = &d.failed {
                return Err(StorageError::Corrupt(format!("WAL failed: {msg}")));
            }
            if d.synced >= lsn {
                return Ok(());
            }
            d = self.synced_cv.wait(d).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Retires every logged transaction after a checkpoint: bumps the
    /// generation and rewrites the header, which kills all existing data
    /// pages at once (their generation no longer matches). Callers sync
    /// the database file *before* this — the crash window between the two
    /// replays already-applied transactions, which is harmless because
    /// replay is idempotent.
    pub fn reset(&self) -> Result<()> {
        let cursor = &mut *lock(&self.cursor);
        self.check_poisoned()?;
        {
            let mut buf = lock(&self.buf);
            debug_assert!(buf.pending.is_empty(), "reset with unsynced records");
            buf.pending.clear();
            buf.next_lsn = 1;
        }
        cursor.generation += 1;
        if let Err(e) = self.write_header(cursor.generation) {
            self.poison(&e);
            return Err(e);
        }
        cursor.next_page = 1;
        lock(&self.durable).synced = 0;
        Ok(())
    }

    /// Reads the log back: header, page stream, record stream, with
    /// torn-tail truncation at both the page and the record level.
    /// `Ok(None)` means "no log here" (empty pager or unrecognizable
    /// header) — distinct from a valid log with zero transactions.
    pub fn scan(pager: &dyn Pager) -> Result<Option<ScanOutcome>> {
        let ps = pager.page_size();
        if pager.page_count() == 0 {
            return Ok(None);
        }
        let mut page = vec![0u8; ps];
        if pager.read_page(PageId(0), &mut page).is_err() {
            return Ok(None);
        }
        if verify_trailer(&page).is_err() || &page[..8] != WAL_MAGIC {
            return Ok(None);
        }
        let generation = u64::from_le_bytes(page[8..16].try_into().expect("8-byte generation"));
        let db_page_size =
            u32::from_le_bytes(page[16..20].try_into().expect("4-byte db page size"));

        // Page level: concatenate the stream out of every same-generation
        // page; stop at the first torn page (CRC), foreign generation, or
        // implausible `used`.
        let cap = ps - DATA_HEADER - TRAILER;
        let mut stream = Vec::new();
        let mut truncated = false;
        for id in 1..pager.page_count() {
            if pager.read_page(PageId(id), &mut page).is_err() {
                truncated = true;
                break;
            }
            if verify_trailer(&page).is_err() {
                truncated = true;
                break;
            }
            let gen = u64::from_le_bytes(page[..8].try_into().expect("8-byte generation"));
            if gen != generation {
                break; // previous incarnation (or a grown-but-unwritten page)
            }
            let used =
                u32::from_le_bytes(page[8..12].try_into().expect("4-byte used count")) as usize;
            if used == 0 || used > cap {
                truncated = true;
                break;
            }
            stream.extend_from_slice(&page[DATA_HEADER..DATA_HEADER + used]);
        }

        // Record level: parse until the stream ends or tears.
        let mut committed = Vec::new();
        let mut last_lsn = 0u64;
        let mut open: Option<Vec<(u32, Vec<u8>)>> = None;
        let mut pos = 0usize;
        while stream.len() - pos >= RECORD_HEADER + RECORD_CRC {
            let head = &stream[pos..pos + RECORD_HEADER];
            let kind = head[0];
            let lsn = u64::from_le_bytes(head[1..9].try_into().expect("8-byte lsn"));
            let len = u32::from_le_bytes(head[9..13].try_into().expect("4-byte len")) as usize;
            let body_end = pos + RECORD_HEADER + len;
            if body_end + RECORD_CRC > stream.len() {
                truncated = true;
                break;
            }
            let crc_stored = u32::from_le_bytes(
                stream[body_end..body_end + RECORD_CRC].try_into().expect("4-byte record crc"),
            );
            if crc32(&stream[pos..body_end]) != crc_stored {
                truncated = true;
                break;
            }
            let payload = &stream[pos + RECORD_HEADER..body_end];
            match kind {
                KIND_BEGIN => {
                    // An unterminated predecessor is simply dropped.
                    open = Some(Vec::new());
                }
                KIND_IMAGE => {
                    if payload.len() != 4 + db_page_size as usize {
                        truncated = true;
                        break;
                    }
                    let page_id =
                        u32::from_le_bytes(payload[..4].try_into().expect("4-byte page id"));
                    match &mut open {
                        Some(images) => images.push((page_id, payload[4..].to_vec())),
                        None => {
                            truncated = true;
                            break; // image outside a transaction: torn log
                        }
                    }
                }
                KIND_COMMIT => {
                    if payload.len() != 8 {
                        truncated = true;
                        break;
                    }
                    let epoch =
                        u64::from_le_bytes(payload.try_into().expect("8-byte epoch"));
                    match open.take() {
                        Some(pages) => committed.push(CommittedTxn { epoch, lsn, pages }),
                        None => {
                            truncated = true;
                            break;
                        }
                    }
                }
                _ => {
                    truncated = true;
                    break;
                }
            }
            last_lsn = lsn;
            pos = body_end + RECORD_CRC;
        }
        if pos < stream.len() && !truncated {
            // A few dangling bytes that cannot hold a record header: the
            // torn tail of the final sync.
            truncated = true;
        }
        Ok(Some(ScanOutcome { generation, db_page_size, committed, truncated, last_lsn }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn mem_wal(db_page_size: u32) -> (Arc<MemPager>, Wal) {
        let pager = Arc::new(MemPager::new(256));
        let wal = Wal::create(Arc::clone(&pager) as Arc<dyn Pager>, db_page_size).unwrap();
        (pager, wal)
    }

    fn image(fill: u8, len: usize) -> Vec<u8> {
        let mut img = vec![fill; len];
        stamp_trailer(&mut img);
        img
    }

    fn commit_txn(wal: &Wal, epoch: u64, pages: &[(u32, Vec<u8>)]) -> u64 {
        wal.append_begin().unwrap();
        for (id, img) in pages {
            wal.append_image(*id, img).unwrap();
        }
        wal.append_commit(epoch).unwrap()
    }

    #[test]
    fn roundtrip_two_transactions() {
        let (pager, wal) = mem_wal(128);
        let a = image(0xA1, 128);
        let b = image(0xB2, 128);
        let c = image(0xC3, 128);
        commit_txn(&wal, 2, &[(1, a.clone()), (2, b.clone())]);
        let lsn = commit_txn(&wal, 3, &[(1, c.clone())]);
        assert_eq!(wal.sync().unwrap(), lsn);
        wal.wait_durable(lsn).unwrap();

        let out = Wal::scan(&*pager).unwrap().expect("valid log");
        assert_eq!(out.generation, 1);
        assert_eq!(out.db_page_size, 128);
        assert!(!out.truncated);
        assert_eq!(out.last_lsn, lsn);
        assert_eq!(out.committed.len(), 2);
        assert_eq!(out.committed[0].epoch, 2);
        assert_eq!(out.committed[0].pages, vec![(1, a), (2, b)]);
        assert_eq!(out.committed[1].epoch, 3);
        assert_eq!(out.committed[1].pages, vec![(1, c)]);
        assert_eq!(wal.commit_count(), 2);
        assert_eq!(wal.sync_count(), 1, "two commits shared one fsync");
    }

    #[test]
    fn dangling_begin_is_discarded() {
        let (pager, wal) = mem_wal(128);
        commit_txn(&wal, 2, &[(1, image(0x11, 128))]);
        // A transaction that never commits: images but no commit record.
        wal.append_begin().unwrap();
        wal.append_image(9, &image(0x99, 128)).unwrap();
        wal.sync().unwrap();
        let out = Wal::scan(&*pager).unwrap().unwrap();
        assert_eq!(out.committed.len(), 1, "uncommitted tail dropped");
        assert_eq!(out.committed[0].epoch, 2);
        assert!(!out.truncated, "a dangling Begin is a clean end, not a tear");
    }

    #[test]
    fn torn_page_truncates_but_keeps_prefix() {
        let (pager, wal) = mem_wal(128);
        commit_txn(&wal, 2, &[(1, image(0x11, 128))]);
        wal.sync().unwrap();
        let pages_after_first = pager.page_count();
        commit_txn(&wal, 3, &[(2, image(0x22, 128)), (3, image(0x33, 128))]);
        wal.sync().unwrap();
        // Tear the first page of the second sync.
        let ps = pager.page_size();
        let mut buf = vec![0u8; ps];
        pager.read_page(PageId(pages_after_first), &mut buf).unwrap();
        buf[DATA_HEADER + 5] ^= 0x40;
        pager.write_page(PageId(pages_after_first), &buf).unwrap();

        let out = Wal::scan(&*pager).unwrap().unwrap();
        assert!(out.truncated, "bit flip must surface as a torn tail");
        assert_eq!(out.committed.len(), 1, "intact prefix survives");
        assert_eq!(out.committed[0].epoch, 2);
    }

    #[test]
    fn record_spanning_pages_survives() {
        // 128-byte db pages inside 256-byte WAL pages: one image record
        // (13 + 4 + 128 + 4 = 149 bytes) cannot fit a single data page
        // (capacity 256 - 20 = 236 holds one but not two).
        let (pager, wal) = mem_wal(128);
        let imgs: Vec<(u32, Vec<u8>)> =
            (0..5).map(|i| (i as u32 + 1, image(0x50 + i as u8, 128))).collect();
        commit_txn(&wal, 2, &imgs);
        wal.sync().unwrap();
        let out = Wal::scan(&*pager).unwrap().unwrap();
        assert_eq!(out.committed.len(), 1);
        assert_eq!(out.committed[0].pages, imgs);
        assert!(pager.page_count() > 3, "stream spanned several pages");
    }

    #[test]
    fn reset_bumps_generation_and_kills_old_records() {
        let (pager, wal) = mem_wal(128);
        commit_txn(&wal, 2, &[(1, image(0x11, 128))]);
        wal.sync().unwrap();
        wal.reset().unwrap();
        let out = Wal::scan(&*pager).unwrap().unwrap();
        assert_eq!(out.generation, 2);
        assert!(out.committed.is_empty(), "old-generation pages are dead");
        assert!(!out.truncated);
        // New records land after the reset and are scanned normally.
        let lsn = commit_txn(&wal, 5, &[(4, image(0x44, 128))]);
        assert_eq!(lsn, 3, "LSNs restart per generation (Begin=1, Image=2, Commit=3)");
        wal.sync().unwrap();
        let out = Wal::scan(&*pager).unwrap().unwrap();
        assert_eq!(out.committed.len(), 1);
        assert_eq!(out.committed[0].epoch, 5);
    }

    #[test]
    fn open_or_reinit_steps_past_existing_generation() {
        let (pager, wal) = mem_wal(128);
        commit_txn(&wal, 2, &[(1, image(0x11, 128))]);
        wal.sync().unwrap();
        drop(wal);
        let wal2 = Wal::open_or_reinit(Arc::clone(&pager) as Arc<dyn Pager>, 128).unwrap();
        let out = Wal::scan(&*pager).unwrap().unwrap();
        assert_eq!(out.generation, 2);
        assert!(out.committed.is_empty());
        drop(wal2);
        // A blank pager starts at generation 1.
        let blank = Arc::new(MemPager::new(256));
        let wal3 = Wal::open_or_reinit(Arc::clone(&blank) as Arc<dyn Pager>, 128).unwrap();
        drop(wal3);
        assert_eq!(Wal::scan(&*blank).unwrap().unwrap().generation, 1);
    }

    #[test]
    fn scan_of_blank_pager_is_none() {
        let pager = MemPager::new(256);
        assert!(Wal::scan(&pager).unwrap().is_none());
        // Garbage header: also None, not an error.
        let mut junk = vec![0x5Au8; 256];
        stamp_trailer(&mut junk);
        pager.write_page(PageId(0), &junk).unwrap();
        assert!(Wal::scan(&pager).unwrap().is_none());
    }

    #[test]
    fn failed_sync_poisons_the_log() {
        use crate::fault::{FaultConfig, FaultPager};
        let inner = Box::new(MemPager::new(256));
        let fault = Arc::new(FaultPager::new(
            inner,
            // Sync 0 is Wal::create's header sync; fail the next one.
            FaultConfig { fail_sync_at: Some(1), ..FaultConfig::none() },
        ));
        let wal = Wal::create(Arc::clone(&fault) as Arc<dyn Pager>, 128).unwrap();
        let lsn = commit_txn(&wal, 2, &[(1, image(0x11, 128))]);
        assert!(wal.sync().is_err());
        assert!(wal.wait_durable(lsn).is_err(), "waiters see the failure");
        assert!(wal.append_begin().is_err(), "appends fail fast after poison");
    }
}

//! I/O statistics.
//!
//! The paper's Section 4 analyzes the algorithms by *number of disk
//! accesses* under the assumption that non-leaf B-tree nodes are cached in
//! main memory. [`IoStats::disk_reads`] is exactly that quantity here: a
//! page read that misses the buffer pool. Experiments reset the counters
//! per query and report them alongside wall-clock time.

/// Counters maintained by the buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page accesses served, hit or miss (the paper's "operations" are a
    /// separate, algorithm-level counter in `xk-slca`).
    pub logical_reads: u64,
    /// Page reads that had to go to the backing store — the paper's
    /// "number of disk accesses".
    pub disk_reads: u64,
    /// Dirty pages written back to the backing store.
    pub disk_writes: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl IoStats {
    /// Buffer-pool hit ratio in `[0, 1]`; 1.0 when there were no reads.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.disk_reads as f64 / self.logical_reads as f64
        }
    }

    /// Component-wise difference, for before/after measurement windows.
    pub fn delta_since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            disk_reads: self.disk_reads - earlier.disk_reads,
            disk_writes: self.disk_writes - earlier.disk_writes,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_edges() {
        let s = IoStats::default();
        assert_eq!(s.hit_ratio(), 1.0);
        let s = IoStats { logical_reads: 10, disk_reads: 5, ..Default::default() };
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delta() {
        let a = IoStats { logical_reads: 10, disk_reads: 4, disk_writes: 2, evictions: 1 };
        let b = IoStats { logical_reads: 25, disk_reads: 9, disk_writes: 2, evictions: 3 };
        let d = b.delta_since(&a);
        assert_eq!(d.logical_reads, 15);
        assert_eq!(d.disk_reads, 5);
        assert_eq!(d.disk_writes, 0);
        assert_eq!(d.evictions, 2);
    }
}

//! I/O statistics.
//!
//! The paper's Section 4 analyzes the algorithms by *number of disk
//! accesses* under the assumption that non-leaf B-tree nodes are cached in
//! main memory. [`IoStats::disk_reads`] is exactly that quantity here: a
//! page read that misses the buffer pool. Experiments reset the counters
//! per query and report them alongside wall-clock time.

/// Counters maintained by the buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page accesses served, hit or miss (the paper's "operations" are a
    /// separate, algorithm-level counter in `xk-slca`).
    pub logical_reads: u64,
    /// Page reads that had to go to the backing store — the paper's
    /// "number of disk accesses".
    pub disk_reads: u64,
    /// Dirty pages written back to the backing store.
    pub disk_writes: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl IoStats {
    /// Buffer-pool hit ratio in `[0, 1]`; 1.0 when there were no reads.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.disk_reads as f64 / self.logical_reads as f64
        }
    }

    /// Component-wise sum, for aggregating per-query windows into a
    /// batch total (the bench harness's accumulation loop).
    pub fn accumulate(&mut self, other: &IoStats) {
        self.logical_reads += other.logical_reads;
        self.disk_reads += other.disk_reads;
        self.disk_writes += other.disk_writes;
        self.evictions += other.evictions;
    }

    /// Component-wise difference, for before/after measurement windows.
    pub fn delta_since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            disk_reads: self.disk_reads - earlier.disk_reads,
            disk_writes: self.disk_writes - earlier.disk_writes,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// Lock-free counters maintained by the (now concurrent) buffer pool.
///
/// Increments use `Relaxed` ordering: the counters are statistics, not
/// synchronization — readers only ever see them through [`snapshot`],
/// which tolerates being a few increments behind in-flight operations on
/// other threads. Measurement windows built from two snapshots around a
/// single-threaded section are exact; around a concurrent section they
/// bound the window's I/O (every operation lands in *some* overlapping
/// window — see the differential concurrency tests).
///
/// [`snapshot`]: AtomicIoStats::snapshot
#[derive(Debug, Default)]
pub struct AtomicIoStats {
    logical_reads: AtomicU64,
    disk_reads: AtomicU64,
    disk_writes: AtomicU64,
    evictions: AtomicU64,
}

use std::sync::atomic::{AtomicU64, Ordering};

impl AtomicIoStats {
    pub fn record_logical_read(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_disk_read(&self) {
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_disk_write(&self) {
        self.disk_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-value copy of the counters.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.disk_reads.store(0, Ordering::Relaxed);
        self.disk_writes.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_edges() {
        let s = IoStats::default();
        assert_eq!(s.hit_ratio(), 1.0);
        let s = IoStats { logical_reads: 10, disk_reads: 5, ..Default::default() };
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn atomic_stats_count_across_threads() {
        let stats = AtomicIoStats::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        stats.record_logical_read();
                        stats.record_disk_read();
                    }
                });
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.logical_reads, 4000);
        assert_eq!(snap.disk_reads, 4000);
        stats.reset();
        assert_eq!(stats.snapshot(), IoStats::default());
    }

    #[test]
    fn accumulate_sums_componentwise() {
        let mut a = IoStats { logical_reads: 10, disk_reads: 4, disk_writes: 2, evictions: 1 };
        a.accumulate(&IoStats { logical_reads: 5, disk_reads: 1, disk_writes: 0, evictions: 2 });
        assert_eq!(a, IoStats { logical_reads: 15, disk_reads: 5, disk_writes: 2, evictions: 3 });
    }

    #[test]
    fn delta() {
        let a = IoStats { logical_reads: 10, disk_reads: 4, disk_writes: 2, evictions: 1 };
        let b = IoStats { logical_reads: 25, disk_reads: 9, disk_writes: 2, evictions: 3 };
        let d = b.delta_since(&a);
        assert_eq!(d.logical_reads, 15);
        assert_eq!(d.disk_reads, 5);
        assert_eq!(d.disk_writes, 0);
        assert_eq!(d.evictions, 2);
    }
}

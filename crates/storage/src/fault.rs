//! Deterministic fault injection for the storage layer.
//!
//! [`FaultPager`] wraps any [`Pager`] and injects failures on a
//! configurable, seeded schedule: hard read/write/sync errors, a *torn
//! write* (only a prefix of the page reaches the backing store before the
//! simulated crash), and silent single-bit flips on the read or write
//! path. Schedules are keyed by per-kind operation counters, so a test
//! that replays the same workload with the same [`FaultConfig`] hits the
//! same fault at the same moment every run.
//!
//! The pager underneath sees real operations, which makes the wrapper
//! usable at every level: raw pager tests, `StorageEnv` buffer-pool
//! tests (via [`crate::StorageEnv::create_with_pager`]), and full
//! index-build crash simulations in `xk-index` / `xksearch`.
//!
//! All counters are atomics shared with a cloneable [`FaultProbe`]
//! handle (see [`FaultPager::probe`]): once the pager is boxed inside a
//! `StorageEnv`, the probe is how concurrency tests observe live
//! operation counts and arm faults mid-run — most importantly
//! [`FaultProbe::arm_read_fault`], which makes exactly one future read
//! fail no matter how many threads are reading.

use crate::error::Result;
use crate::pager::{PageId, Pager};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// When and how a [`FaultPager`] misbehaves. All indices are 0-based
/// counts of operations *of that kind* (reads, writes, syncs).
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Seed for the deterministic PRNG driving torn-write lengths and
    /// bit-flip positions.
    pub seed: u64,
    /// Every read from this read-op index on fails with an I/O error.
    pub fail_read_at: Option<u64>,
    /// Every write from this write-op index on fails with an I/O error.
    pub fail_write_at: Option<u64>,
    /// Every sync from this sync-op index on fails with an I/O error.
    pub fail_sync_at: Option<u64>,
    /// The write at this write-op index persists only a seeded prefix of
    /// the page (spliced over the old contents), reports failure, and
    /// *crashes* the pager: every later write and sync fails. Reads keep
    /// working so tests can inspect the torn state.
    pub torn_write_at: Option<u64>,
    /// The read at this read-op index has one seeded bit silently flipped
    /// in the returned buffer (the backing store is untouched).
    pub flip_read_bit_at: Option<u64>,
    /// The write at this write-op index has one seeded bit silently
    /// flipped before it reaches the backing store.
    pub flip_write_bit_at: Option<u64>,
}

impl FaultConfig {
    /// A config that injects nothing — useful as a baseline.
    pub fn none() -> Self {
        Self::default()
    }

    /// A config whose only fault is a torn write at write-op `op` —
    /// the soak harnesses' standard mid-commit power cut.
    pub fn torn_write(op: u64, seed: u64) -> Self {
        FaultConfig { seed, torn_write_at: Some(op), ..FaultConfig::none() }
    }

    /// A config whose syncs fail from sync-op `op` on — the durability
    /// barrier itself breaking, with writes still landing.
    pub fn failed_sync(op: u64, seed: u64) -> Self {
        FaultConfig { seed, fail_sync_at: Some(op), ..FaultConfig::none() }
    }
}

/// splitmix64 — tiny, seedable, and good enough to scatter fault
/// positions; keeps the crate free of a `rand` dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shared mutable state between a [`FaultPager`] and its [`FaultProbe`]s.
#[derive(Debug, Default)]
struct FaultState {
    reads: AtomicU64,
    writes: AtomicU64,
    syncs: AtomicU64,
    crashed: AtomicBool,
    /// Number of one-shot read faults still pending (armed by a probe).
    /// Decremented by CAS so each armed fault fires on exactly one read.
    armed_read_faults: AtomicU64,
    /// PRNG state for torn-write lengths / bit-flip positions. A mutex,
    /// not an atomic: draws must stay deterministic per-op-index, and
    /// they only happen on the (rare) faulting operations.
    rng: Mutex<u64>,
}

/// Cloneable observer/controller for a (possibly boxed-away) [`FaultPager`].
#[derive(Debug, Clone)]
pub struct FaultProbe {
    state: Arc<FaultState>,
}

impl FaultProbe {
    /// Read operations attempted so far (including failed ones).
    pub fn reads(&self) -> u64 {
        self.state.reads.load(Ordering::Relaxed)
    }

    /// Write operations attempted so far (including failed ones).
    pub fn writes(&self) -> u64 {
        self.state.writes.load(Ordering::Relaxed)
    }

    /// Sync operations attempted so far (including failed ones).
    pub fn syncs(&self) -> u64 {
        self.state.syncs.load(Ordering::Relaxed)
    }

    /// True once a torn write has "crashed" the pager.
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::Relaxed)
    }

    /// Arms a one-shot fault: exactly one future `read_page` call fails
    /// with an injected I/O error, regardless of which thread issues it.
    /// Arming twice queues two one-shot failures, and so on.
    pub fn arm_read_fault(&self) {
        self.state.armed_read_faults.fetch_add(1, Ordering::AcqRel);
    }

    /// Number of armed one-shot read faults that have not fired yet.
    pub fn pending_read_faults(&self) -> u64 {
        self.state.armed_read_faults.load(Ordering::Acquire)
    }

    /// Claims one armed fault if any is pending. Lock-free multi-consumer.
    fn try_claim_read_fault(&self) -> bool {
        self.state
            .armed_read_faults
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
    }
}

/// A [`Pager`] wrapper that injects faults per a [`FaultConfig`].
pub struct FaultPager {
    inner: Box<dyn Pager>,
    config: FaultConfig,
    probe: FaultProbe,
}

impl FaultPager {
    pub fn new(inner: Box<dyn Pager>, config: FaultConfig) -> FaultPager {
        let state = FaultState {
            rng: Mutex::new(config.seed ^ 0x51CA_FE15_DEAD_BEEF),
            ..FaultState::default()
        };
        FaultPager { inner, config, probe: FaultProbe { state: Arc::new(state) } }
    }

    /// A handle onto the live counters and fault-arming controls; stays
    /// valid after the pager is boxed into a storage env.
    pub fn probe(&self) -> FaultProbe {
        self.probe.clone()
    }

    /// Read operations attempted so far (including failed ones).
    pub fn reads(&self) -> u64 {
        self.probe.reads()
    }

    /// Write operations attempted so far (including failed ones).
    pub fn writes(&self) -> u64 {
        self.probe.writes()
    }

    /// Sync operations attempted so far (including failed ones).
    pub fn syncs(&self) -> u64 {
        self.probe.syncs()
    }

    /// True once a torn write has "crashed" the pager.
    pub fn crashed(&self) -> bool {
        self.probe.crashed()
    }

    fn next_rand(&self) -> u64 {
        let mut state = self.probe.state.rng.lock().unwrap_or_else(|e| e.into_inner());
        splitmix64(&mut state)
    }

    fn injected(kind: &str, op: u64) -> crate::StorageError {
        io::Error::other(format!("injected {kind} fault at op {op}")).into()
    }
}

impl Pager for FaultPager {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    // xk-analyze: allow(panic_path, reason = "buf is page-sized per the Pager contract")
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let op = self.probe.state.reads.fetch_add(1, Ordering::Relaxed);
        if self.config.fail_read_at.is_some_and(|at| op >= at) {
            return Err(Self::injected("read", op));
        }
        if self.probe.try_claim_read_fault() {
            return Err(Self::injected("one-shot read", op));
        }
        self.inner.read_page(id, buf)?;
        if self.config.flip_read_bit_at == Some(op) {
            let pos = (self.next_rand() as usize) % (buf.len() * 8);
            buf[pos / 8] ^= 1 << (pos % 8);
        }
        Ok(())
    }

    // xk-analyze: allow(panic_path, reason = "torn/flip offsets are reduced modulo the page-sized buf")
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let op = self.probe.state.writes.fetch_add(1, Ordering::Relaxed);
        if self.probe.crashed() {
            return Err(Self::injected("post-crash write", op));
        }
        if self.config.fail_write_at.is_some_and(|at| op >= at) {
            return Err(Self::injected("write", op));
        }
        if self.config.torn_write_at == Some(op) {
            // Persist a strict prefix of the new page over the old bytes,
            // then crash: the classic torn-page outcome of a power cut.
            let keep = 1 + (self.next_rand() as usize) % (buf.len() - 1);
            let mut torn = vec![0u8; buf.len()];
            // Old contents first (a fresh page reads as zeros either way).
            // xk-analyze: allow(swallowed_result, reason = "best-effort read of the old contents; a fresh page legitimately reads as zeros")
            let _ = self.inner.read_page(id, &mut torn);
            torn[..keep].copy_from_slice(&buf[..keep]);
            self.inner.write_page(id, &torn)?;
            self.probe.state.crashed.store(true, Ordering::Relaxed);
            return Err(Self::injected("torn write", op));
        }
        if self.config.flip_write_bit_at == Some(op) {
            let pos = (self.next_rand() as usize) % (buf.len() * 8);
            let mut flipped = buf.to_vec();
            flipped[pos / 8] ^= 1 << (pos % 8);
            return self.inner.write_page(id, &flipped);
        }
        self.inner.write_page(id, buf)
    }

    fn grow(&self) -> Result<PageId> {
        if self.probe.crashed() {
            return Err(Self::injected(
                "post-crash grow",
                self.probe.state.writes.load(Ordering::Relaxed),
            ));
        }
        self.inner.grow()
    }

    fn sync(&self) -> Result<()> {
        let op = self.probe.state.syncs.fetch_add(1, Ordering::Relaxed);
        if self.probe.crashed() {
            return Err(Self::injected("post-crash sync", op));
        }
        if self.config.fail_sync_at.is_some_and(|at| op >= at) {
            return Err(Self::injected("sync", op));
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn mem_fault(config: FaultConfig) -> FaultPager {
        FaultPager::new(Box::new(MemPager::new(256)), config)
    }

    #[test]
    fn clean_config_is_transparent() {
        let p = mem_fault(FaultConfig::none());
        let id = p.grow().unwrap();
        let page = vec![7u8; 256];
        p.write_page(id, &page).unwrap();
        let mut back = vec![0u8; 256];
        p.read_page(id, &mut back).unwrap();
        assert_eq!(back, page);
        p.sync().unwrap();
    }

    #[test]
    fn read_failures_start_at_configured_op() {
        let p = mem_fault(FaultConfig { fail_read_at: Some(2), ..FaultConfig::none() });
        let id = p.grow().unwrap();
        p.write_page(id, &[1u8; 256]).unwrap();
        let mut buf = vec![0u8; 256];
        p.read_page(id, &mut buf).unwrap(); // op 0
        p.read_page(id, &mut buf).unwrap(); // op 1
        assert!(p.read_page(id, &mut buf).is_err()); // op 2
        assert!(p.read_page(id, &mut buf).is_err()); // stays failed
        assert_eq!(p.reads(), 4);
    }

    #[test]
    fn torn_write_persists_prefix_and_crashes() {
        let p = mem_fault(FaultConfig { torn_write_at: Some(1), seed: 9, ..FaultConfig::none() });
        let id = p.grow().unwrap();
        p.write_page(id, &[0xAAu8; 256]).unwrap(); // op 0: clean
        assert!(p.write_page(id, &[0xBBu8; 256]).is_err()); // op 1: torn
        assert!(p.crashed());
        let mut buf = vec![0u8; 256];
        p.read_page(id, &mut buf).unwrap();
        let torn_len = buf.iter().take_while(|&&b| b == 0xBB).count();
        assert!((1..256).contains(&torn_len), "got prefix of {torn_len}");
        assert!(buf[torn_len..].iter().all(|&b| b == 0xAA), "old suffix survives");
        assert!(p.write_page(id, &[1u8; 256]).is_err(), "writes dead after crash");
        assert!(p.sync().is_err(), "syncs dead after crash");
    }

    #[test]
    fn bit_flips_are_deterministic_per_seed() {
        let positions: Vec<usize> = (0..2)
            .map(|_| {
                let p = mem_fault(FaultConfig {
                    flip_read_bit_at: Some(0),
                    seed: 1234,
                    ..FaultConfig::none()
                });
                let id = p.grow().unwrap();
                p.write_page(id, &[0u8; 256]).unwrap();
                let mut buf = vec![0u8; 256];
                p.read_page(id, &mut buf).unwrap();
                buf.iter().position(|&b| b != 0).expect("one bit flipped")
            })
            .collect();
        assert_eq!(positions[0], positions[1], "same seed, same flip");

        let other = mem_fault(FaultConfig {
            flip_read_bit_at: Some(0),
            seed: 4321,
            ..FaultConfig::none()
        });
        let id = other.grow().unwrap();
        other.write_page(id, &[0u8; 256]).unwrap();
        let mut buf = vec![0u8; 256];
        other.read_page(id, &mut buf).unwrap();
        // Different seeds *may* collide, but not for these two.
        assert_ne!(buf.iter().position(|&b| b != 0).unwrap(), positions[0]);
    }

    #[test]
    fn read_flip_is_transient_write_flip_is_persistent() {
        let p = mem_fault(FaultConfig {
            flip_read_bit_at: Some(0),
            seed: 7,
            ..FaultConfig::none()
        });
        let id = p.grow().unwrap();
        p.write_page(id, &[0u8; 256]).unwrap();
        let mut first = vec![0u8; 256];
        let mut second = vec![0u8; 256];
        p.read_page(id, &mut first).unwrap();
        p.read_page(id, &mut second).unwrap();
        assert!(first.iter().any(|&b| b != 0), "first read corrupted");
        assert!(second.iter().all(|&b| b == 0), "store itself untouched");

        let p = mem_fault(FaultConfig {
            flip_write_bit_at: Some(0),
            seed: 7,
            ..FaultConfig::none()
        });
        let id = p.grow().unwrap();
        p.write_page(id, &[0u8; 256]).unwrap();
        let mut back = vec![0u8; 256];
        p.read_page(id, &mut back).unwrap();
        assert!(back.iter().any(|&b| b != 0), "write flip persisted");
    }

    #[test]
    fn armed_read_fault_fires_exactly_once() {
        let p = mem_fault(FaultConfig::none());
        let probe = p.probe();
        let id = p.grow().unwrap();
        p.write_page(id, &[3u8; 256]).unwrap();
        let mut buf = vec![0u8; 256];
        p.read_page(id, &mut buf).unwrap(); // unarmed: fine
        probe.arm_read_fault();
        assert_eq!(probe.pending_read_faults(), 1);
        assert!(p.read_page(id, &mut buf).is_err(), "armed read fails");
        assert_eq!(probe.pending_read_faults(), 0);
        p.read_page(id, &mut buf).unwrap(); // back to normal
        assert_eq!(probe.reads(), 3);
    }

    #[test]
    fn armed_read_fault_fires_exactly_once_across_threads() {
        let p = mem_fault(FaultConfig::none());
        let probe = p.probe();
        let id = p.grow().unwrap();
        p.write_page(id, &[5u8; 256]).unwrap();
        probe.arm_read_fault();
        let failures: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let p = &p;
                    s.spawn(move || {
                        let mut fails = 0u64;
                        let mut buf = vec![0u8; 256];
                        for _ in 0..50 {
                            if p.read_page(id, &mut buf).is_err() {
                                fails += 1;
                            }
                        }
                        fails
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(failures, 1, "one armed fault, one failing read");
        assert_eq!(probe.reads(), 200, "every read attempt is counted, failed or not");
    }
}

//! CRC-32 (IEEE 802.3 polynomial) for page trailers.
//!
//! Every physical page of an `XKSTORE2` file ends in an 8-byte trailer:
//! a little-endian CRC-32 of the page payload followed by four reserved
//! zero bytes. The tables are built at compile time and the hot loop uses
//! slicing-by-8 — eight independent table lookups per 8 input bytes
//! instead of one serial lookup per byte — because verification sits on
//! every cold-cache page read. The crate stays dependency-free.

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[n][b] = CRC of byte b followed by n zero bytes, so the eight
    // lookups of one 8-byte chunk can be combined with plain XOR.
    let mut n = 1;
    while n < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[n - 1][i];
            tables[n][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        n += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = build_tables();

/// Bytes of the per-page trailer: a little-endian CRC-32 of the payload
/// followed by four reserved zero bytes. Shared by the `XKSTORE2` data
/// format and the write-ahead log.
pub const TRAILER: usize = 8;

/// Recomputes and stores the CRC trailer of a physical page buffer
/// (`page.len()` must exceed [`TRAILER`]).
// xk-analyze: allow(panic_path, reason = "trailer offsets are derived from the fixed page size")
pub fn stamp_trailer(page: &mut [u8]) {
    let payload_end = page.len() - TRAILER;
    let crc = crc32(&page[..payload_end]);
    page[payload_end..payload_end + 4].copy_from_slice(&crc.to_le_bytes());
    page[payload_end + 4..].fill(0);
}

/// Checks the CRC trailer of a physical page buffer. `Ok(())` on a match
/// or on an all-zero page (the state of a grown-but-never-written page —
/// a real CRC-32 of a zero payload is nonzero, so the exemption cannot
/// mask a corrupted written page); otherwise `Err((stored, computed))`.
// xk-analyze: allow(panic_path, reason = "trailer offsets are derived from the fixed page size")
pub fn verify_trailer(page: &[u8]) -> std::result::Result<(), (u32, u32)> {
    let payload_end = page.len() - TRAILER;
    let stored = u32::from_le_bytes(
        page[payload_end..payload_end + 4].try_into().expect("4-byte slice of the page trailer"),
    );
    let computed = crc32(&page[..payload_end]);
    if stored == computed {
        return Ok(());
    }
    if stored == 0 && page.iter().all(|&b| b == 0) {
        return Ok(());
    }
    Err((stored, computed))
}

/// CRC-32 of `data` (IEEE polynomial, reflected, init/xorout `!0`).
// xk-analyze: allow(panic_path, reason = "table indices are masked to 8 bits")
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = vec![0xA5u8; 512];
        let reference = crc32(&base);
        for byte in [0usize, 17, 255, 511] {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn sliced_loop_matches_bytewise_reference() {
        let bytewise = |data: &[u8]| {
            let mut crc = !0u32;
            for &b in data {
                crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        };
        let data: Vec<u8> = (0..1029u32).map(|i| (i.wrapping_mul(131) >> 3) as u8).collect();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64, 65, 511, 512, 1029] {
            assert_eq!(crc32(&data[..len]), bytewise(&data[..len]), "length {len}");
        }
    }

    #[test]
    fn zeros_do_not_hash_to_zero() {
        // The all-zero page exemption in the env relies on this: a real
        // checksum of a zero payload is nonzero, so `stored == 0` plus an
        // all-zero payload can only mean "never written".
        assert_ne!(crc32(&[0u8; 248]), 0);
        assert_ne!(crc32(&[0u8; 4088]), 0);
    }
}

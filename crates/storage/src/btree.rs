//! A disk-based B+tree over the buffer pool.
//!
//! This is the reproduction's stand-in for the Berkeley DB B-trees used by
//! the paper's XKSearch implementation (Section 4). Keys and values are
//! variable-length byte strings; keys are compared with `memcmp` order, so
//! callers must use order-preserving encodings (see the packed Dewey codec
//! in `xk-index`). Leaves are doubly linked, which makes the paper's two
//! match primitives direct tree operations:
//!
//! * `rm(v, S)` — right match, the smallest key `>= v` — is [`BTree::seek_ge`];
//! * `lm(v, S)` — left match, the largest key `<= v` — is [`BTree::seek_le`].
//!
//! The tree supports insert, point get, delete with rebalancing
//! (merge-or-redistribute), ordered cursors in both directions, and
//! persists its root in a named root slot of the [`StorageEnv`] meta page.

use crate::env::StorageEnv;
use crate::error::{Result, StorageError};
use crate::pager::PageId;

const TYPE_LEAF: u8 = 1;
const TYPE_INTERNAL: u8 = 2;
const LEAF_HDR: usize = 11; // type(1) count(2) prev(4) next(4)
const INT_HDR: usize = 7; // type(1) count(2) child0(4)

/// Raw in-page accessors: the hot read path (point gets, match seeks,
/// cursor steps) binary-searches the slotted page directly, without
/// materializing a [`Node`]. Pages store an offset directory after the
/// header, so entry `i` is addressable in O(1):
///
/// ```text
/// leaf:     [hdr 11][offsets: count*u16][{klen u16, vlen u16, key, val}...]
/// internal: [hdr  7][offsets: count*u16][{klen u16, key, child u32}...]
/// ```
mod raw {
    use super::{INT_HDR, LEAF_HDR, TYPE_INTERNAL, TYPE_LEAF};
    use crate::error::{Result, StorageError};
    use crate::pager::PageId;

    /// Offsets and lengths in the slotted directory come from disk; a
    /// page can pass its checksum and still carry garbage (a partially
    /// applied build, a bug elsewhere, a deliberate fault-injection
    /// mangle), so every derived range is bounds-checked and surfaces as
    /// [`StorageError::Corrupt`] instead of a panic on the query path.
    fn corrupt(what: &str) -> StorageError {
        StorageError::Corrupt(format!("btree page: {what}"))
    }

    fn read_u16(page: &[u8], pos: usize, what: &str) -> Result<usize> {
        let bytes = page.get(pos..pos + 2).ok_or_else(|| corrupt(what))?;
        // xk-analyze: allow(panic_path, reason = "slice is exactly 2 bytes by construction")
        Ok(u16::from_le_bytes(bytes.try_into().expect("2-byte slice")) as usize)
    }

    fn read_u32(page: &[u8], pos: usize, what: &str) -> Result<u32> {
        let bytes = page.get(pos..pos + 4).ok_or_else(|| corrupt(what))?;
        // xk-analyze: allow(panic_path, reason = "slice is exactly 4 bytes by construction")
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    pub fn is_leaf(page: &[u8]) -> bool {
        page.first() == Some(&TYPE_LEAF)
    }

    pub fn is_internal(page: &[u8]) -> bool {
        page.first() == Some(&TYPE_INTERNAL)
    }

    pub fn count(page: &[u8]) -> Result<usize> {
        read_u16(page, 1, "count header")
    }

    pub fn leaf_prev(page: &[u8]) -> Result<Option<PageId>> {
        Ok(PageId::decode_opt(read_u32(page, 3, "leaf prev link")?))
    }

    pub fn leaf_next(page: &[u8]) -> Result<Option<PageId>> {
        Ok(PageId::decode_opt(read_u32(page, 7, "leaf next link")?))
    }

    fn offset(page: &[u8], hdr: usize, i: usize) -> Result<usize> {
        read_u16(page, hdr + 2 * i, "offset directory entry")
    }

    /// Key + value of leaf entry `i`.
    pub fn leaf_entry(page: &[u8], i: usize) -> Result<(&[u8], &[u8])> {
        let off = offset(page, LEAF_HDR, i)?;
        let klen = read_u16(page, off, "leaf entry key length")?;
        let vlen = read_u16(page, off + 2, "leaf entry value length")?;
        let kstart = off + 4;
        let key = page
            .get(kstart..kstart + klen)
            .ok_or_else(|| corrupt("leaf key out of bounds"))?;
        let val = page
            .get(kstart + klen..kstart + klen + vlen)
            .ok_or_else(|| corrupt("leaf value out of bounds"))?;
        Ok((key, val))
    }

    /// Key of leaf entry `i`.
    pub fn leaf_key(page: &[u8], i: usize) -> Result<&[u8]> {
        Ok(leaf_entry(page, i)?.0)
    }

    /// First leaf index with key `>= probe` (== count when none).
    pub fn leaf_lower_bound(page: &[u8], probe: &[u8]) -> Result<usize> {
        let n = count(page)?;
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if leaf_key(page, mid)? < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// First leaf index with key `> probe` (== count when none).
    pub fn leaf_upper_bound(page: &[u8], probe: &[u8]) -> Result<usize> {
        let n = count(page)?;
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if leaf_key(page, mid)? <= probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    pub fn internal_sep(page: &[u8], i: usize) -> Result<&[u8]> {
        let off = offset(page, INT_HDR, i)?;
        let klen = read_u16(page, off, "separator key length")?;
        page.get(off + 2..off + 2 + klen)
            .ok_or_else(|| corrupt("separator key out of bounds"))
    }

    pub fn internal_child_at(page: &[u8], i: usize) -> Result<PageId> {
        if i == 0 {
            return Ok(PageId(read_u32(page, 3, "child 0 pointer")?));
        }
        let off = offset(page, INT_HDR, i - 1)?;
        let klen = read_u16(page, off, "separator key length")?;
        let cpos = off + 2 + klen;
        Ok(PageId(read_u32(page, cpos, "child pointer")?))
    }

    /// The child *index* to descend into for `probe` (boundary keys go
    /// right): the first `i` with `sep[i] > probe`, i.e. child `i` holds
    /// keys `k` with `sep[i-1] <= k < sep[i]`.
    pub fn internal_route_idx(page: &[u8], probe: &[u8]) -> Result<usize> {
        let n = count(page)?;
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if internal_sep(page, mid)? <= probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// The child to descend into for `probe` (boundary keys go right).
    pub fn internal_route(page: &[u8], probe: &[u8]) -> Result<PageId> {
        internal_child_at(page, internal_route_idx(page, probe)?)
    }
}

/// An in-memory image of one B+tree node page.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Leaf {
        prev: Option<PageId>,
        next: Option<PageId>,
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    },
    Internal {
        /// `children.len() == keys.len() + 1`; `children[i]` holds keys `k`
        /// with `keys[i-1] <= k < keys[i]` (boundary keys go right).
        keys: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                LEAF_HDR
                    + entries.iter().map(|(k, v)| 6 + k.len() + v.len()).sum::<usize>()
            }
            Node::Internal { keys, .. } => {
                INT_HDR + keys.iter().map(|k| 8 + k.len()).sum::<usize>()
            }
        }
    }

    // xk-analyze: allow(panic_path, reason = "serialized_size is checked against the page before write")
    fn write(&self, page: &mut [u8]) {
        match self {
            Node::Leaf { prev, next, entries } => {
                page[0] = TYPE_LEAF;
                page[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                page[3..7].copy_from_slice(&PageId::encode_opt(*prev).to_le_bytes());
                page[7..11].copy_from_slice(&PageId::encode_opt(*next).to_le_bytes());
                let mut off = LEAF_HDR + 2 * entries.len();
                for (i, (k, v)) in entries.iter().enumerate() {
                    let dir = LEAF_HDR + 2 * i;
                    page[dir..dir + 2].copy_from_slice(&(off as u16).to_le_bytes());
                    page[off..off + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    page[off + 2..off + 4].copy_from_slice(&(v.len() as u16).to_le_bytes());
                    off += 4;
                    page[off..off + k.len()].copy_from_slice(k);
                    off += k.len();
                    page[off..off + v.len()].copy_from_slice(v);
                    off += v.len();
                }
            }
            Node::Internal { keys, children } => {
                page[0] = TYPE_INTERNAL;
                page[1..3].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                page[3..7].copy_from_slice(&children[0].0.to_le_bytes());
                let mut off = INT_HDR + 2 * keys.len();
                for (i, k) in keys.iter().enumerate() {
                    let dir = INT_HDR + 2 * i;
                    page[dir..dir + 2].copy_from_slice(&(off as u16).to_le_bytes());
                    page[off..off + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    off += 2;
                    page[off..off + k.len()].copy_from_slice(k);
                    off += k.len();
                    page[off..off + 4].copy_from_slice(&children[i + 1].0.to_le_bytes());
                    off += 4;
                }
            }
        }
    }

    /// Parses a node image with full bounds checking: every offset and
    /// length is validated before use, so a structurally mangled page
    /// (one whose checksum still passes, e.g. a software bug) surfaces as
    /// [`StorageError::Corrupt`] instead of a panic. The unchecked `raw`
    /// accessors stay on the hot read path, where checksum verification
    /// has already vouched for the page.
    // xk-analyze: allow(panic_path, reason = "slice() bounds-checks every range before the fixed-width decodes")
    fn read(page: &[u8]) -> Result<Node> {
        fn slice<'p>(page: &'p [u8], start: usize, len: usize, what: &str) -> Result<&'p [u8]> {
            page.get(start..start + len).ok_or_else(|| {
                StorageError::Corrupt(format!("truncated B+tree node: {what} out of bounds"))
            })
        }
        fn get_u16(page: &[u8], pos: usize, what: &str) -> Result<usize> {
            Ok(u16::from_le_bytes(
                slice(page, pos, 2, what)?.try_into().expect("2-byte slice"),
            ) as usize)
        }
        fn get_u32(page: &[u8], pos: usize, what: &str) -> Result<u32> {
            Ok(u32::from_le_bytes(
                slice(page, pos, 4, what)?.try_into().expect("4-byte slice"),
            ))
        }
        match page.first() {
            Some(&TYPE_LEAF) => {
                let count = get_u16(page, 1, "leaf count")?;
                let prev = PageId::decode_opt(get_u32(page, 3, "leaf prev")?);
                let next = PageId::decode_opt(get_u32(page, 7, "leaf next")?);
                let mut entries = Vec::with_capacity(count);
                for i in 0..count {
                    let off = get_u16(page, LEAF_HDR + 2 * i, "leaf offset")?;
                    let klen = get_u16(page, off, "leaf key length")?;
                    let vlen = get_u16(page, off + 2, "leaf value length")?;
                    let k = slice(page, off + 4, klen, "leaf key")?.to_vec();
                    let v = slice(page, off + 4 + klen, vlen, "leaf value")?.to_vec();
                    entries.push((k, v));
                }
                Ok(Node::Leaf { prev, next, entries })
            }
            Some(&TYPE_INTERNAL) => {
                let count = get_u16(page, 1, "internal count")?;
                let mut children = vec![PageId(get_u32(page, 3, "first child")?)];
                let mut keys = Vec::with_capacity(count);
                for i in 0..count {
                    let off = get_u16(page, INT_HDR + 2 * i, "internal offset")?;
                    let klen = get_u16(page, off, "separator length")?;
                    keys.push(slice(page, off + 2, klen, "separator key")?.to_vec());
                    children.push(PageId(get_u32(page, off + 2 + klen, "child pointer")?));
                }
                Ok(Node::Internal { keys, children })
            }
            Some(&t) => Err(StorageError::Corrupt(format!("unknown B+tree node type {t}"))),
            None => Err(StorageError::Corrupt("empty B+tree node page".into())),
        }
    }
}

/// A B+tree handle. The root page id lives in a named root slot of the
/// environment's meta page, so handles are cheap and freely copyable.
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    slot: usize,
}

/// Outcome of inserting into a subtree: the replaced value (if the key
/// existed) and a split (separator, new right sibling) to propagate.
struct InsertOutcome {
    old_value: Option<Vec<u8>>,
    split: Option<(Vec<u8>, PageId)>,
}

impl BTree {
    /// Creates an empty tree whose root is stored in meta slot `slot`.
    pub fn create(env: &StorageEnv, slot: usize) -> Result<BTree> {
        let root = env.allocate_page()?;
        let node = Node::Leaf { prev: None, next: None, entries: Vec::new() };
        write_node(env, root, &node)?;
        env.set_root_slot(slot, Some(root))?;
        Ok(BTree { slot })
    }

    /// Opens the tree stored in meta slot `slot`.
    pub fn open(env: &StorageEnv, slot: usize) -> Result<BTree> {
        match env.root_slot(slot)? {
            Some(_) => Ok(BTree { slot }),
            None => Err(StorageError::Corrupt(format!("no B+tree in root slot {slot}"))),
        }
    }

    fn root(&self, env: &StorageEnv) -> Result<PageId> {
        env.root_slot(self.slot)?.ok_or_else(|| {
            StorageError::Corrupt(format!("B+tree root slot {} vanished", self.slot))
        })
    }

    /// Largest key+value size this tree accepts, for the env's page size.
    pub fn max_entry_size(env: &StorageEnv) -> usize {
        (env.page_size() - LEAF_HDR) / 4 - 4
    }

    /// Inserts `key -> value`, returning the previous value if the key was
    /// already present.
    pub fn insert(&self, env: &StorageEnv, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        let max = Self::max_entry_size(env);
        if key.len() + value.len() > max {
            return Err(StorageError::EntryTooLarge {
                entry_bytes: key.len() + value.len(),
                max_bytes: max,
            });
        }
        let root = self.root(env)?;
        let outcome = self.insert_rec(env, root, key, value)?;
        if let Some((sep, right)) = outcome.split {
            let new_root_page = env.allocate_page()?;
            let new_root = Node::Internal { keys: vec![sep], children: vec![root, right] };
            write_node(env, new_root_page, &new_root)?;
            env.set_root_slot(self.slot, Some(new_root_page))?;
        }
        Ok(outcome.old_value)
    }

    // xk-analyze: allow(panic_path, reason = "binary-search/upper_bound indices and split midpoints are in bounds for a just-overflowed node; the unreachable arms destructure variants constructed lines above")
    fn insert_rec(
        &self,
        env: &StorageEnv,
        page: PageId,
        key: &[u8],
        value: &[u8],
    ) -> Result<InsertOutcome> {
        let node = read_node(env, page)?;
        match node {
            Node::Leaf { prev, next, mut entries } => {
                let old_value = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Some(std::mem::replace(&mut entries[i].1, value.to_vec())),
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        None
                    }
                };
                let candidate = Node::Leaf { prev, next, entries };
                if candidate.serialized_size() <= env.page_size() {
                    write_node(env, page, &candidate)?;
                    return Ok(InsertOutcome { old_value, split: None });
                }
                // Split the leaf at the byte midpoint.
                let (prev, old_next, entries) = match candidate {
                    Node::Leaf { prev, next, entries } => (prev, next, entries),
                    _ => unreachable!(),
                };
                let mid = split_point_leaf(&entries);
                let right_entries = entries[mid..].to_vec();
                let left_entries = entries[..mid].to_vec();
                let sep = right_entries[0].0.clone();
                let right_page = env.allocate_page()?;
                // Relink siblings: left <-> right <-> old-next.
                let left_node = Node::Leaf {
                    prev,
                    next: Some(right_page),
                    entries: left_entries,
                };
                let right_node = Node::Leaf {
                    prev: Some(page),
                    next: old_next,
                    entries: right_entries,
                };
                write_node(env, page, &left_node)?;
                write_node(env, right_page, &right_node)?;
                if let Some(n) = old_next {
                    update_leaf_prev(env, n, Some(right_page))?;
                }
                Ok(InsertOutcome { old_value, split: Some((sep, right_page)) })
            }
            Node::Internal { mut keys, mut children } => {
                let idx = upper_bound(&keys, key);
                let child = children[idx];
                let outcome = self.insert_rec(env, child, key, value)?;
                let Some((sep, right)) = outcome.split else {
                    return Ok(outcome);
                };
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
                let candidate = Node::Internal { keys, children };
                if candidate.serialized_size() <= env.page_size() {
                    write_node(env, page, &candidate)?;
                    return Ok(InsertOutcome { old_value: outcome.old_value, split: None });
                }
                // Split the internal node; the middle key moves up.
                let (keys, children) = match candidate {
                    Node::Internal { keys, children } => (keys, children),
                    _ => unreachable!(),
                };
                let mid = keys.len() / 2;
                let promoted = keys[mid].clone();
                let left_node = Node::Internal {
                    keys: keys[..mid].to_vec(),
                    children: children[..=mid].to_vec(),
                };
                let right_node = Node::Internal {
                    keys: keys[mid + 1..].to_vec(),
                    children: children[mid + 1..].to_vec(),
                };
                let right_page = env.allocate_page()?;
                write_node(env, page, &left_node)?;
                write_node(env, right_page, &right_node)?;
                Ok(InsertOutcome {
                    old_value: outcome.old_value,
                    split: Some((promoted, right_page)),
                })
            }
        }
    }

    /// Bulk-loads a tree from **strictly ascending** `(key, value)` pairs,
    /// replacing whatever the slot held. Leaves are packed left to right
    /// to a ~90% fill target and internal levels are stacked bottom-up —
    /// far cheaper than repeated [`BTree::insert`] descents, and exactly
    /// the pattern the index builder needs (its composite keys are
    /// generated in sorted order).
    pub fn bulk_load(
        env: &StorageEnv,
        slot: usize,
        entries: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Result<BTree> {
        let fill = env.page_size() * 9 / 10;
        let max = Self::max_entry_size(env);

        // ---- leaf level ----
        let mut leaves: Vec<(Vec<u8>, PageId)> = Vec::new(); // (first key, page)
        let mut current: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut size = LEAF_HDR;
        let mut prev_leaf: Option<PageId> = None;
        let mut last_key: Option<Vec<u8>> = None;

        let flush_leaf = |env: &StorageEnv,
                              current: &mut Vec<(Vec<u8>, Vec<u8>)>,
                              size: &mut usize,
                              prev_leaf: &mut Option<PageId>,
                              leaves: &mut Vec<(Vec<u8>, PageId)>|
         -> Result<()> {
            let page = env.allocate_page()?;
            let entries = std::mem::take(current);
            *size = LEAF_HDR;
            let first_key = entries.first().map(|(k, _)| k.clone()).unwrap_or_default();
            let node = Node::Leaf { prev: *prev_leaf, next: None, entries };
            write_node(env, page, &node)?;
            if let Some(p) = *prev_leaf {
                update_leaf_next(env, p, Some(page))?;
            }
            *prev_leaf = Some(page);
            leaves.push((first_key, page));
            Ok(())
        };

        for (k, v) in entries {
            if k.len() + v.len() > max {
                return Err(StorageError::EntryTooLarge {
                    entry_bytes: k.len() + v.len(),
                    max_bytes: max,
                });
            }
            if let Some(last) = &last_key {
                if last.as_slice() >= k.as_slice() {
                    return Err(StorageError::Corrupt(
                        "bulk_load requires strictly ascending keys".into(),
                    ));
                }
            }
            last_key = Some(k.clone());
            let esz = 6 + k.len() + v.len();
            if size + esz > fill && !current.is_empty() {
                flush_leaf(env, &mut current, &mut size, &mut prev_leaf, &mut leaves)?;
            }
            size += esz;
            current.push((k, v));
        }
        if !current.is_empty() || leaves.is_empty() {
            flush_leaf(env, &mut current, &mut size, &mut prev_leaf, &mut leaves)?;
        }

        // ---- internal levels ----
        let mut level = leaves;
        while level.len() > 1 {
            let mut next_level: Vec<(Vec<u8>, PageId)> = Vec::new();
            let mut iter = level.into_iter().peekable();
            while iter.peek().is_some() {
                let (node_first, first_child) = iter.next().expect("peeked");
                let mut keys: Vec<Vec<u8>> = Vec::new();
                let mut children = vec![first_child];
                let mut size = INT_HDR;
                while let Some((sep, _)) = iter.peek() {
                    let esz = 8 + sep.len();
                    if size + esz > fill && !keys.is_empty() {
                        break;
                    }
                    // An internal node needs at least two children even if
                    // the fill target disagrees.
                    let (sep, child) = iter.next().expect("peeked");
                    keys.push(sep);
                    children.push(child);
                    size += esz;
                }
                if keys.is_empty() {
                    if let Some((sep, child)) = iter.next() {
                        keys.push(sep);
                        children.push(child);
                    } else {
                        // A trailing single child: rather than an invalid
                        // one-child internal node, promote it directly.
                        next_level.push((node_first, first_child));
                        continue;
                    }
                }
                let page = env.allocate_page()?;
                write_node(env, page, &Node::Internal { keys, children })?;
                next_level.push((node_first, page));
            }
            level = next_level;
        }

        env.set_root_slot(slot, Some(level[0].1))?;
        Ok(BTree { slot })
    }

    /// Point lookup. Binary-searches pages in place (no node
    /// materialization) — this is the hot path of the match operations.
    pub fn get(&self, env: &StorageEnv, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut page = self.root(env)?;
        loop {
            let step = env.with_page(page, |p| {
                if raw::is_internal(p) {
                    Ok(Step::Descend(raw::internal_route(p, key)?))
                } else if raw::is_leaf(p) {
                    let idx = raw::leaf_lower_bound(p, key)?;
                    if idx < raw::count(p)? && raw::leaf_key(p, idx)? == key {
                        Ok(Step::Value(Some(raw::leaf_entry(p, idx)?.1.to_vec())))
                    } else {
                        Ok(Step::Value(None))
                    }
                } else {
                    Err(StorageError::Corrupt("unknown B+tree node type".into()))
                }
            })??;
            match step {
                Step::Descend(c) => page = c,
                Step::Value(v) => return Ok(v),
                Step::At(_) | Step::Chain(_) => unreachable!("get never positions a cursor"),
            }
        }
    }

    /// True iff `key` is present.
    pub fn contains(&self, env: &StorageEnv, key: &[u8]) -> Result<bool> {
        Ok(self.get(env, key)?.is_some())
    }

    /// [`BTree::seek_ge`] through an anchored cursor: reuses the pinned
    /// root-to-leaf path in `anchor` when the probe still falls inside the
    /// pinned leaf's key range, gallops up only as many levels as the key
    /// escapes before re-descending, and falls back to a full descent when
    /// the anchor is unpinned or the env's data version moved.
    pub fn seek_ge_anchored(
        &self,
        env: &StorageEnv,
        anchor: &mut BTreeCursor,
        key: &[u8],
    ) -> Result<Cursor> {
        self.seek_anchored(env, anchor, key, true)
    }

    /// [`BTree::seek_le`] through an anchored cursor; see
    /// [`BTree::seek_ge_anchored`].
    pub fn seek_le_anchored(
        &self,
        env: &StorageEnv,
        anchor: &mut BTreeCursor,
        key: &[u8],
    ) -> Result<Cursor> {
        self.seek_anchored(env, anchor, key, false)
    }

    fn seek_anchored(
        &self,
        env: &StorageEnv,
        anchor: &mut BTreeCursor,
        key: &[u8],
        ge: bool,
    ) -> Result<Cursor> {
        let version = env.data_version();
        if anchor.version != version || anchor.path.is_empty() {
            // Unpinned or possibly stale: pin a fresh path from the root.
            anchor.path.clear();
            anchor.version = version;
            let root = self.root(env)?;
            return self.descend_record(env, anchor, root, None, None, key, ge);
        }
        // Gallop up: pop pinned levels until one's separator bounds contain
        // the probe. The containment test (`lower <= key < upper`) matches
        // `raw::internal_route_idx` exactly (boundary keys go right), so an
        // anchored re-descent lands on the same leaf a fresh descent would.
        while let Some(level) = anchor.path.last() {
            let above = level.lower.as_deref().is_none_or(|lo| lo <= key);
            let below = level.upper.as_deref().is_none_or(|hi| key < hi);
            if above && below {
                break;
            }
            anchor.path.pop();
        }
        match anchor.path.pop() {
            Some(top) => {
                // Re-descend from the deepest still-valid level (re-pushing
                // it); a probe inside the pinned leaf costs one page read.
                self.descend_record(env, anchor, top.page, top.lower, top.upper, key, ge)
            }
            None => {
                // The root level has unbounded separators, so this only
                // happens if the path was emptied by a racing invalidation;
                // recover with a fresh descent.
                let root = self.root(env)?;
                self.descend_record(env, anchor, root, None, None, key, ge)
            }
        }
    }

    /// Descends from `page` (whose subtree covers `[lower, upper)`) to the
    /// leaf for `key`, pushing every visited level onto `anchor`, and
    /// positions a [`Cursor`] exactly like the stateless seeks.
    #[allow(clippy::too_many_arguments)]
    fn descend_record(
        &self,
        env: &StorageEnv,
        anchor: &mut BTreeCursor,
        mut page: PageId,
        mut lower: Option<Vec<u8>>,
        mut upper: Option<Vec<u8>>,
        key: &[u8],
        ge: bool,
    ) -> Result<Cursor> {
        enum Anchored {
            Descend(PageId, Option<Vec<u8>>, Option<Vec<u8>>),
            At(usize),
            Chain(Option<PageId>),
        }
        loop {
            let step = env.with_page(page, |p| {
                if raw::is_internal(p) {
                    let i = raw::internal_route_idx(p, key)?;
                    let n = raw::count(p)?;
                    let child = raw::internal_child_at(p, i)?;
                    let lo = if i == 0 {
                        lower.clone()
                    } else {
                        Some(raw::internal_sep(p, i - 1)?.to_vec())
                    };
                    let hi = if i == n {
                        upper.clone()
                    } else {
                        Some(raw::internal_sep(p, i)?.to_vec())
                    };
                    Ok(Anchored::Descend(child, lo, hi))
                } else if raw::is_leaf(p) {
                    if ge {
                        let idx = raw::leaf_lower_bound(p, key)?;
                        if idx < raw::count(p)? {
                            Ok(Anchored::At(idx))
                        } else {
                            Ok(Anchored::Chain(raw::leaf_next(p)?))
                        }
                    } else {
                        let idx = raw::leaf_upper_bound(p, key)?;
                        if idx > 0 {
                            Ok(Anchored::At(idx - 1))
                        } else {
                            Ok(Anchored::Chain(raw::leaf_prev(p)?))
                        }
                    }
                } else {
                    Err(StorageError::Corrupt("unknown B+tree node type".into()))
                }
            })??;
            match step {
                Anchored::Descend(child, lo, hi) => {
                    anchor.path.push(PathLevel { page, lower, upper });
                    page = child;
                    lower = lo;
                    upper = hi;
                }
                Anchored::At(idx) => {
                    anchor.path.push(PathLevel { page, lower, upper });
                    return Ok(Cursor { page: Some(page), idx });
                }
                Anchored::Chain(link) => {
                    // The answer sits on a neighboring leaf, but the probe
                    // key still belongs to *this* leaf's range — pin it.
                    anchor.path.push(PathLevel { page, lower, upper });
                    return if ge {
                        chain_forward(env, link)
                    } else {
                        chain_backward(env, link)
                    };
                }
            }
        }
    }

    /// The paper's **right match** `rm(key, S)`: the smallest entry with
    /// key `>=` the probe. Returns a positioned cursor (or an exhausted one
    /// if every key is smaller).
    pub fn seek_ge(&self, env: &StorageEnv, key: &[u8]) -> Result<Cursor> {
        let mut page = self.root(env)?;
        loop {
            let step = env.with_page(page, |p| {
                if raw::is_internal(p) {
                    Ok(Step::Descend(raw::internal_route(p, key)?))
                } else if raw::is_leaf(p) {
                    let idx = raw::leaf_lower_bound(p, key)?;
                    if idx < raw::count(p)? {
                        Ok(Step::At(idx))
                    } else {
                        // Everything here is smaller; the answer (if any)
                        // is the first entry of the next non-empty leaf.
                        Ok(Step::Chain(raw::leaf_next(p)?))
                    }
                } else {
                    Err(StorageError::Corrupt("unknown B+tree node type".into()))
                }
            })??;
            match step {
                Step::Descend(c) => page = c,
                Step::At(idx) => return Ok(Cursor { page: Some(page), idx }),
                Step::Chain(next) => return chain_forward(env, next),
                // xk-analyze: allow(panic_path, reason = "the closure above only constructs Descend/At/Chain; Value is produced by other with_page closures")
                Step::Value(_) => unreachable!("seek never yields a value"),
            }
        }
    }

    /// The paper's **left match** `lm(key, S)`: the largest entry with key
    /// `<=` the probe.
    pub fn seek_le(&self, env: &StorageEnv, key: &[u8]) -> Result<Cursor> {
        let mut page = self.root(env)?;
        loop {
            let step = env.with_page(page, |p| {
                if raw::is_internal(p) {
                    Ok(Step::Descend(raw::internal_route(p, key)?))
                } else if raw::is_leaf(p) {
                    let idx = raw::leaf_upper_bound(p, key)?;
                    if idx > 0 {
                        Ok(Step::At(idx - 1))
                    } else {
                        Ok(Step::Chain(raw::leaf_prev(p)?))
                    }
                } else {
                    Err(StorageError::Corrupt("unknown B+tree node type".into()))
                }
            })??;
            match step {
                Step::Descend(c) => page = c,
                Step::At(idx) => return Ok(Cursor { page: Some(page), idx }),
                Step::Chain(prev) => return chain_backward(env, prev),
                // xk-analyze: allow(panic_path, reason = "the closure above only constructs Descend/At/Chain; Value is produced by other with_page closures")
                Step::Value(_) => unreachable!("seek never yields a value"),
            }
        }
    }

    /// Cursor positioned at the smallest entry.
    pub fn cursor_first(&self, env: &StorageEnv) -> Result<Cursor> {
        self.seek_ge(env, &[])
    }

    /// Number of entries (full scan; intended for tests and tools).
    pub fn len(&self, env: &StorageEnv) -> Result<u64> {
        let mut n = 0;
        let mut c = self.cursor_first(env)?;
        while c.read(env)?.is_some() {
            n += 1;
            c.advance(env)?;
        }
        Ok(n)
    }

    /// True iff the tree has no entries.
    pub fn is_empty(&self, env: &StorageEnv) -> Result<bool> {
        let c = self.cursor_first(env)?;
        Ok(!c.is_valid())
    }

    /// Deletes `key`, returning its value if it was present. Underfull
    /// nodes are rebalanced by merging with or redistributing entries from
    /// a sibling; emptied pages return to the free list.
    pub fn remove(&self, env: &StorageEnv, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let root = self.root(env)?;
        let old = self.remove_rec(env, root, key)?;
        // Collapse a root that became a single-child internal node.
        if let Node::Internal { keys, children } = read_node(env, root)? {
            if keys.is_empty() {
                env.set_root_slot(self.slot, Some(children[0]))?;
                env.free_page(root)?;
            }
        }
        Ok(old)
    }

    fn remove_rec(
        &self,
        env: &StorageEnv,
        page: PageId,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>> {
        let mut node = read_node(env, page)?;
        match &mut node {
            Node::Leaf { entries, .. } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        let (_, v) = entries.remove(i);
                        write_node(env, page, &node)?;
                        Ok(Some(v))
                    }
                    Err(_) => Ok(None),
                }
            }
            Node::Internal { keys, children } => {
                let idx = upper_bound(keys, key);
                let child = children[idx];
                let old = self.remove_rec(env, child, key)?;
                if old.is_some() {
                    let child_size = read_node(env, child)?.serialized_size();
                    if is_underfull(env, child_size) {
                        self.rebalance_child(env, page, idx)?;
                    }
                }
                Ok(old)
            }
        }
    }

    /// Rebalances `children[idx]` of the internal node at `page` by merging
    /// with or borrowing from an adjacent sibling.
    fn rebalance_child(&self, env: &StorageEnv, page: PageId, idx: usize) -> Result<()> {
        let node = read_node(env, page)?;
        let (keys, children) = match node {
            Node::Internal { keys, children } => (keys, children),
            _ => unreachable!("rebalance_child is only called on internal nodes"),
        };
        // Pair the child with its right sibling when one exists, otherwise
        // its left sibling (idx >= 1 then, since internal nodes have >= 2
        // children).
        let (li, ri) = if idx + 1 < children.len() { (idx, idx + 1) } else { (idx - 1, idx) };
        let left_page = children[li];
        let right_page = children[ri];
        let sep = keys[li].clone();
        let left = read_node(env, left_page)?;
        let right = read_node(env, right_page)?;

        match (left, right) {
            (
                Node::Leaf { prev: lp, entries: mut le, .. },
                Node::Leaf { next: rn, entries: re, .. },
            ) => {
                le.extend(re);
                let combined = Node::Leaf { prev: lp, next: rn, entries: le };
                if combined.serialized_size() <= env.page_size() {
                    // Merge into the left page; free the right page.
                    write_node(env, left_page, &combined)?;
                    if let Some(n) = rn {
                        update_leaf_prev(env, n, Some(left_page))?;
                    }
                    env.free_page(right_page)?;
                    self.remove_separator(env, page, li, left_page)?;
                } else {
                    // Redistribute at the byte midpoint.
                    let entries = match combined {
                        Node::Leaf { entries, .. } => entries,
                        _ => unreachable!(),
                    };
                    let mid = split_point_leaf(&entries);
                    let new_sep = entries[mid].0.clone();
                    let lnode = Node::Leaf {
                        prev: lp,
                        next: Some(right_page),
                        entries: entries[..mid].to_vec(),
                    };
                    let rnode = Node::Leaf {
                        prev: Some(left_page),
                        next: rn,
                        entries: entries[mid..].to_vec(),
                    };
                    write_node(env, left_page, &lnode)?;
                    write_node(env, right_page, &rnode)?;
                    self.replace_separator(env, page, li, new_sep)?;
                }
            }
            (
                Node::Internal { keys: lk, children: lc },
                Node::Internal { keys: rk, children: rc },
            ) => {
                let mut all_keys = lk;
                all_keys.push(sep);
                all_keys.extend(rk);
                let mut all_children = lc;
                all_children.extend(rc);
                let combined =
                    Node::Internal { keys: all_keys.clone(), children: all_children.clone() };
                if combined.serialized_size() <= env.page_size() {
                    write_node(env, left_page, &combined)?;
                    env.free_page(right_page)?;
                    self.remove_separator(env, page, li, left_page)?;
                } else {
                    let mid = all_keys.len() / 2;
                    let new_sep = all_keys[mid].clone();
                    let lnode = Node::Internal {
                        keys: all_keys[..mid].to_vec(),
                        children: all_children[..=mid].to_vec(),
                    };
                    let rnode = Node::Internal {
                        keys: all_keys[mid + 1..].to_vec(),
                        children: all_children[mid + 1..].to_vec(),
                    };
                    write_node(env, left_page, &lnode)?;
                    write_node(env, right_page, &rnode)?;
                    self.replace_separator(env, page, li, new_sep)?;
                }
            }
            _ => {
                return Err(StorageError::Corrupt(
                    "sibling nodes of different kinds".into(),
                ))
            }
        }
        Ok(())
    }

    /// After a merge: drop separator `li` and the right child pointer.
    fn remove_separator(
        &self,
        env: &StorageEnv,
        page: PageId,
        li: usize,
        _merged_into: PageId,
    ) -> Result<()> {
        let mut node = read_node(env, page)?;
        if let Node::Internal { keys, children } = &mut node {
            keys.remove(li);
            children.remove(li + 1);
        }
        write_node(env, page, &node)
    }

    fn replace_separator(
        &self,
        env: &StorageEnv,
        page: PageId,
        li: usize,
        sep: Vec<u8>,
    ) -> Result<()> {
        let mut node = read_node(env, page)?;
        if let Node::Internal { keys, .. } = &mut node {
            keys[li] = sep;
        }
        write_node(env, page, &node)
    }

    /// Walks the tree and checks structural invariants (key order within
    /// and across nodes, separator correctness, child kinds). For tests.
    pub fn check_invariants(&self, env: &StorageEnv) -> Result<()> {
        let root = self.root(env)?;
        self.check_rec(env, root, None, None)?;
        // Leaf chain must be globally sorted.
        let mut c = self.cursor_first(env)?;
        let mut prev: Option<Vec<u8>> = None;
        while let Some((k, _)) = c.read(env)? {
            if let Some(p) = &prev {
                if p.as_slice() >= k.as_slice() {
                    return Err(StorageError::Corrupt("leaf chain out of order".into()));
                }
            }
            prev = Some(k);
            c.advance(env)?;
        }
        Ok(())
    }

    /// Verifies the doubly-linked leaf chain: the leftmost leaf has no
    /// `prev`, every leaf's `prev` names its actual left sibling, and the
    /// chain terminates within the file's page count (no cycles). Used by
    /// `xksearch verify`; complements [`BTree::check_invariants`], which
    /// checks key order but walks only `next` links.
    pub fn verify_leaf_links(&self, env: &StorageEnv) -> Result<()> {
        let limit = env.page_count() as u64 + 1;
        // Descend along first children to the leftmost leaf.
        let mut page = self.root(env)?;
        let mut depth = 0u64;
        loop {
            let child = env.with_page(page, |p| {
                if raw::is_internal(p) {
                    Ok(Some(raw::internal_child_at(p, 0)?))
                } else if raw::is_leaf(p) {
                    Ok(None)
                } else {
                    Err(StorageError::Corrupt(format!(
                        "page {}: unknown B+tree node type",
                        page.0
                    )))
                }
            })??;
            match child {
                Some(c) => {
                    depth += 1;
                    if depth > limit {
                        return Err(StorageError::Corrupt(
                            "B+tree deeper than the file's page count (cycle?)".into(),
                        ));
                    }
                    page = c;
                }
                None => break,
            }
        }
        // Walk the chain left to right checking prev/next symmetry.
        let mut expected_prev: Option<PageId> = None;
        let mut steps = 0u64;
        loop {
            let (prev, next) = env.with_page(page, |p| {
                if raw::is_leaf(p) {
                    Ok((raw::leaf_prev(p)?, raw::leaf_next(p)?))
                } else {
                    Err(StorageError::Corrupt(format!(
                        "page {} in the leaf chain is not a leaf",
                        page.0
                    )))
                }
            })??;
            if prev != expected_prev {
                return Err(StorageError::Corrupt(format!(
                    "leaf {}: prev link {:?} does not name its left sibling {:?} \
                     (asymmetric sibling links)",
                    page.0,
                    prev.map(|p| p.0),
                    expected_prev.map(|p| p.0)
                )));
            }
            steps += 1;
            if steps > limit {
                return Err(StorageError::Corrupt(
                    "leaf chain longer than the file's page count (cycle?)".into(),
                ));
            }
            match next {
                Some(n) => {
                    expected_prev = Some(page);
                    page = n;
                }
                None => break,
            }
        }
        Ok(())
    }

    fn check_rec(
        &self,
        env: &StorageEnv,
        page: PageId,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<()> {
        let node = read_node(env, page)?;
        if node.serialized_size() > env.page_size() {
            return Err(StorageError::Corrupt("node overflows its page".into()));
        }
        match node {
            Node::Leaf { entries, .. } => {
                for w in entries.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return Err(StorageError::Corrupt("leaf keys out of order".into()));
                    }
                }
                for (k, _) in &entries {
                    if let Some(lo) = lo {
                        if k.as_slice() < lo {
                            return Err(StorageError::Corrupt("leaf key below bound".into()));
                        }
                    }
                    if let Some(hi) = hi {
                        if k.as_slice() >= hi {
                            return Err(StorageError::Corrupt("leaf key above bound".into()));
                        }
                    }
                }
                Ok(())
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 || keys.is_empty() {
                    return Err(StorageError::Corrupt("malformed internal node".into()));
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err(StorageError::Corrupt("separators out of order".into()));
                    }
                }
                for i in 0..children.len() {
                    let child_lo = if i == 0 { lo } else { Some(keys[i - 1].as_slice()) };
                    let child_hi = if i == keys.len() { hi } else { Some(keys[i].as_slice()) };
                    self.check_rec(env, children[i], child_lo, child_hi)?;
                }
                Ok(())
            }
        }
    }
}

/// One pinned level of an anchored root-to-leaf path: the page and the
/// key range `[lower, upper)` its subtree covers, derived from the parent
/// separators during descent (`None` bounds are −∞ / +∞).
#[derive(Debug, Clone)]
struct PathLevel {
    page: PageId,
    lower: Option<Vec<u8>>,
    upper: Option<Vec<u8>>,
}

/// An anchored cursor over a [`BTree`]: remembers the last root-to-leaf
/// descent (page ids plus separator bounds per level) so that a following
/// [`BTree::seek_ge_anchored`] / [`BTree::seek_le_anchored`] whose probe
/// still falls inside the pinned leaf costs a single page read, and a
/// probe that escapes gallops up only as many levels as it escaped.
///
/// The cursor snapshots the env's [`StorageEnv::data_version`] when it
/// pins a path and silently falls back to a full fresh descent (re-pinning)
/// whenever the version has moved — any mutation anywhere in the env
/// invalidates every anchored cursor, which is conservative but safe.
/// Probe results are therefore always identical to the stateless seeks.
#[derive(Debug, Clone, Default)]
pub struct BTreeCursor {
    /// Pinned path, root first, leaf last. Empty = unpinned.
    path: Vec<PathLevel>,
    /// [`StorageEnv::data_version`] at pin time.
    version: u64,
}

impl BTreeCursor {
    /// A fresh, unpinned cursor; the first anchored seek through it does a
    /// full descent and pins the path it took.
    pub fn new() -> BTreeCursor {
        BTreeCursor::default()
    }

    /// True iff the cursor currently pins a path (it may still be
    /// discarded on the next seek if the env's data version moved).
    pub fn is_pinned(&self) -> bool {
        !self.path.is_empty()
    }

    /// Number of pinned levels (tree height of the last descent).
    pub fn pinned_depth(&self) -> usize {
        self.path.len()
    }

    /// Drops the pinned path; the next anchored seek descends afresh.
    pub fn invalidate(&mut self) {
        self.path.clear();
    }
}

/// A position within the leaf chain of a [`BTree`]. Invalid cursors
/// (`page == None`) read as `None`.
#[derive(Debug, Clone, Copy)]
pub struct Cursor {
    page: Option<PageId>,
    idx: usize,
}

impl Cursor {
    /// True iff the cursor points at an entry.
    pub fn is_valid(&self) -> bool {
        self.page.is_some()
    }

    /// Reads the entry under the cursor.
    pub fn read(&self, env: &StorageEnv) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        let Some(page) = self.page else { return Ok(None) };
        env.with_page(page, |p| {
            if !raw::is_leaf(p) {
                return Err(StorageError::Corrupt("cursor points at an internal node".into()));
            }
            if self.idx < raw::count(p)? {
                let (k, v) = raw::leaf_entry(p, self.idx)?;
                Ok(Some((k.to_vec(), v.to_vec())))
            } else {
                Ok(None)
            }
        })?
    }

    /// Moves to the next entry in key order.
    pub fn advance(&mut self, env: &StorageEnv) -> Result<()> {
        let Some(page) = self.page else { return Ok(()) };
        let (count, next) = leaf_shape(env, page)?;
        if self.idx + 1 < count {
            self.idx += 1;
            return Ok(());
        }
        *self = chain_forward(env, next)?;
        Ok(())
    }

    /// Moves to the previous entry in key order.
    pub fn retreat(&mut self, env: &StorageEnv) -> Result<()> {
        let Some(page) = self.page else { return Ok(()) };
        if self.idx > 0 {
            self.idx -= 1;
            return Ok(());
        }
        let prev = env.with_page(page, |p| {
            if raw::is_leaf(p) {
                Ok(raw::leaf_prev(p)?)
            } else {
                Err(StorageError::Corrupt("cursor points at an internal node".into()))
            }
        })??;
        *self = chain_backward(env, prev)?;
        Ok(())
    }
}

/// One descent step, computed inside a page closure.
enum Step {
    Descend(PageId),
    At(usize),
    Chain(Option<PageId>),
    Value(Option<Vec<u8>>),
}

/// `(count, next)` of a leaf page.
fn leaf_shape(env: &StorageEnv, page: PageId) -> Result<(usize, Option<PageId>)> {
    env.with_page(page, |p| {
        if raw::is_leaf(p) {
            Ok((raw::count(p)?, raw::leaf_next(p)?))
        } else {
            Err(StorageError::Corrupt("expected a leaf page".into()))
        }
    })?
}

/// First position of the first non-empty leaf reachable via `next` links.
fn chain_forward(env: &StorageEnv, mut cur: Option<PageId>) -> Result<Cursor> {
    while let Some(p) = cur {
        let (count, next) = leaf_shape(env, p)?;
        if count > 0 {
            return Ok(Cursor { page: Some(p), idx: 0 });
        }
        cur = next;
    }
    Ok(Cursor { page: None, idx: 0 })
}

/// Last position of the first non-empty leaf reachable via `prev` links.
fn chain_backward(env: &StorageEnv, mut cur: Option<PageId>) -> Result<Cursor> {
    while let Some(p) = cur {
        let (count, prev) = env.with_page(p, |pp| {
            if raw::is_leaf(pp) {
                Ok((raw::count(pp)?, raw::leaf_prev(pp)?))
            } else {
                Err(StorageError::Corrupt("expected a leaf page".into()))
            }
        })??;
        if count > 0 {
            return Ok(Cursor { page: Some(p), idx: count - 1 });
        }
        cur = prev;
    }
    Ok(Cursor { page: None, idx: 0 })
}

fn read_node(env: &StorageEnv, page: PageId) -> Result<Node> {
    env.with_page(page, Node::read)?
}

fn write_node(env: &StorageEnv, page: PageId, node: &Node) -> Result<()> {
    debug_assert!(node.serialized_size() <= env.page_size());
    env.with_page_mut(page, |p| node.write(p))
}

fn update_leaf_prev(env: &StorageEnv, page: PageId, prev: Option<PageId>) -> Result<()> {
    env.with_page_mut(page, |p| {
        p[3..7].copy_from_slice(&PageId::encode_opt(prev).to_le_bytes());
    })
}

fn update_leaf_next(env: &StorageEnv, page: PageId, next: Option<PageId>) -> Result<()> {
    env.with_page_mut(page, |p| {
        p[7..11].copy_from_slice(&PageId::encode_opt(next).to_le_bytes());
    })
}

/// First index `i` with `keys[i] > key` (boundary keys descend right).
fn upper_bound(keys: &[Vec<u8>], key: &[u8]) -> usize {
    keys.partition_point(|k| k.as_slice() <= key)
}

/// Split index for an over-full leaf: balances serialized bytes, while
/// guaranteeing both sides are non-empty.
fn split_point_leaf(entries: &[(Vec<u8>, Vec<u8>)]) -> usize {
    let total: usize = entries.iter().map(|(k, v)| 6 + k.len() + v.len()).sum();
    let mut acc = 0;
    for (i, (k, v)) in entries.iter().enumerate() {
        acc += 6 + k.len() + v.len();
        if acc >= total / 2 {
            return (i + 1).min(entries.len() - 1).max(1);
        }
    }
    entries.len() / 2
}

fn is_underfull(env: &StorageEnv, serialized_size: usize) -> bool {
    serialized_size < env.page_size() / 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvOptions;

    fn mem_env() -> StorageEnv {
        StorageEnv::in_memory(EnvOptions { page_size: 256, pool_pages: 64 })
    }

    fn key(i: u32) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_small() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        assert_eq!(t.get(&env, b"a").unwrap(), None);
        assert_eq!(t.insert(&env, b"a", b"1").unwrap(), None);
        assert_eq!(t.insert(&env, b"b", b"2").unwrap(), None);
        assert_eq!(t.get(&env, b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.insert(&env, b"a", b"9").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(&env, b"a").unwrap(), Some(b"9".to_vec()));
        t.check_invariants(&env).unwrap();
    }

    #[test]
    fn insert_many_splits() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        let n = 2000u32;
        for i in 0..n {
            // Insert in a scrambled order to exercise splits everywhere.
            let k = (i * 7919) % n;
            t.insert(&env, &key(k), &key(k * 2)).unwrap();
        }
        t.check_invariants(&env).unwrap();
        assert_eq!(t.len(&env).unwrap(), n as u64);
        for i in 0..n {
            assert_eq!(t.get(&env, &key(i)).unwrap(), Some(key(i * 2)));
        }
    }

    #[test]
    fn seek_ge_and_le() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        for i in (0..500u32).map(|i| i * 10) {
            t.insert(&env, &key(i), b"").unwrap();
        }
        // Exact hit.
        let c = t.seek_ge(&env, &key(100)).unwrap();
        assert_eq!(c.read(&env).unwrap().unwrap().0, key(100));
        let c = t.seek_le(&env, &key(100)).unwrap();
        assert_eq!(c.read(&env).unwrap().unwrap().0, key(100));
        // Between keys.
        let c = t.seek_ge(&env, &key(101)).unwrap();
        assert_eq!(c.read(&env).unwrap().unwrap().0, key(110));
        let c = t.seek_le(&env, &key(101)).unwrap();
        assert_eq!(c.read(&env).unwrap().unwrap().0, key(100));
        // Beyond the ends.
        let c = t.seek_ge(&env, &key(5000)).unwrap();
        assert!(c.read(&env).unwrap().is_none());
        let mut below_all = key(0);
        below_all.pop(); // 3-byte key sorts before every 4-byte key
        let c = t.seek_le(&env, &below_all).unwrap();
        assert!(c.read(&env).unwrap().is_none());
    }

    #[test]
    fn cursor_walks_in_both_directions() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        for i in 0..300u32 {
            t.insert(&env, &key(i), b"v").unwrap();
        }
        let mut c = t.cursor_first(&env).unwrap();
        for i in 0..300u32 {
            assert_eq!(c.read(&env).unwrap().unwrap().0, key(i));
            c.advance(&env).unwrap();
        }
        assert!(c.read(&env).unwrap().is_none());
        let mut c = t.seek_le(&env, &key(u32::MAX)).unwrap();
        for i in (0..300u32).rev() {
            assert_eq!(c.read(&env).unwrap().unwrap().0, key(i));
            c.retreat(&env).unwrap();
        }
        assert!(c.read(&env).unwrap().is_none());
    }

    #[test]
    fn remove_everything() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        let n = 1000u32;
        for i in 0..n {
            t.insert(&env, &key(i), &key(i)).unwrap();
        }
        for i in 0..n {
            let k = (i * 6151) % n; // scrambled deletion order
            assert_eq!(t.remove(&env, &key(k)).unwrap(), Some(key(k)));
            if k.is_multiple_of(100) {
                t.check_invariants(&env).unwrap();
            }
        }
        assert!(t.is_empty(&env).unwrap());
        t.check_invariants(&env).unwrap();
        assert_eq!(t.remove(&env, &key(1)).unwrap(), None);
    }

    #[test]
    fn variable_length_keys() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        let keys: Vec<Vec<u8>> = (0..300)
            .map(|i| {
                let mut k = vec![b'k'; i % 23 + 1];
                k.extend_from_slice(&(i as u32).to_be_bytes());
                k
            })
            .collect();
        for k in &keys {
            t.insert(&env, k, b"x").unwrap();
        }
        t.check_invariants(&env).unwrap();
        for k in &keys {
            assert!(t.contains(&env, k).unwrap());
        }
        assert_eq!(t.len(&env).unwrap(), keys.len() as u64);
    }

    #[test]
    fn entry_too_large_is_rejected() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        let huge = vec![0u8; 300];
        assert!(matches!(
            t.insert(&env, &huge, b""),
            Err(StorageError::EntryTooLarge { .. })
        ));
    }

    #[test]
    fn two_trees_in_one_env() {
        let env = mem_env();
        let a = BTree::create(&env, 0).unwrap();
        let b = BTree::create(&env, 1).unwrap();
        for i in 0..200u32 {
            a.insert(&env, &key(i), b"a").unwrap();
            b.insert(&env, &key(i), b"b").unwrap();
        }
        assert_eq!(a.get(&env, &key(5)).unwrap(), Some(b"a".to_vec()));
        assert_eq!(b.get(&env, &key(5)).unwrap(), Some(b"b".to_vec()));
        a.check_invariants(&env).unwrap();
        b.check_invariants(&env).unwrap();
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("xk-btree-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.db");
        let opts = EnvOptions { page_size: 512, pool_pages: 32 };
        {
            let env = StorageEnv::create(&path, opts.clone()).unwrap();
            let t = BTree::create(&env, 0).unwrap();
            for i in 0..500u32 {
                t.insert(&env, &key(i), &key(i + 1)).unwrap();
            }
            env.flush().unwrap();
        }
        {
            let env = StorageEnv::open(&path, opts).unwrap();
            let t = BTree::open(&env, 0).unwrap();
            for i in 0..500u32 {
                assert_eq!(t.get(&env, &key(i)).unwrap(), Some(key(i + 1)));
            }
            t.check_invariants(&env).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bulk_load_matches_incremental_inserts() {
        let env = mem_env();
        let n = 3000u32;
        let entries: Vec<(Vec<u8>, Vec<u8>)> =
            (0..n).map(|i| (key(i), key(i * 2))).collect();
        let bulk = BTree::bulk_load(&env, 0, entries.clone()).unwrap();
        bulk.check_invariants(&env).unwrap();
        assert_eq!(bulk.len(&env).unwrap(), n as u64);
        for i in 0..n {
            assert_eq!(bulk.get(&env, &key(i)).unwrap(), Some(key(i * 2)));
        }
        // Seeks behave identically to an insert-built tree.
        let c = bulk.seek_ge(&env, &key(1500)).unwrap();
        assert_eq!(c.read(&env).unwrap().unwrap().0, key(1500));
        let c = bulk.seek_le(&env, &key(u32::MAX)).unwrap();
        assert_eq!(c.read(&env).unwrap().unwrap().0, key(n - 1));
        // And the tree stays mutable afterwards.
        bulk.insert(&env, &key(n + 5), b"later").unwrap();
        bulk.remove(&env, &key(7)).unwrap();
        bulk.check_invariants(&env).unwrap();
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let env = mem_env();
        let t = BTree::bulk_load(&env, 0, Vec::new()).unwrap();
        assert!(t.is_empty(&env).unwrap());
        t.check_invariants(&env).unwrap();
        let t = BTree::bulk_load(&env, 1, vec![(b"k".to_vec(), b"v".to_vec())]).unwrap();
        assert_eq!(t.get(&env, b"k").unwrap(), Some(b"v".to_vec()));
        t.check_invariants(&env).unwrap();
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        let env = mem_env();
        let entries = vec![
            (b"b".to_vec(), vec![]),
            (b"a".to_vec(), vec![]),
        ];
        assert!(BTree::bulk_load(&env, 0, entries).is_err());
        let dup = vec![(b"a".to_vec(), vec![]), (b"a".to_vec(), vec![])];
        assert!(BTree::bulk_load(&env, 0, dup).is_err());
    }

    #[test]
    fn verify_leaf_links_accepts_built_trees() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        for i in 0..2000u32 {
            t.insert(&env, &key((i * 7919) % 2000), b"v").unwrap();
        }
        t.verify_leaf_links(&env).unwrap();
        // Bulk-loaded trees too.
        let entries: Vec<_> = (0..2000u32).map(|i| (key(i), vec![])).collect();
        let b = BTree::bulk_load(&env, 1, entries).unwrap();
        b.verify_leaf_links(&env).unwrap();
        // And after deletions rebalance the chain.
        for i in (0..2000u32).step_by(2) {
            t.remove(&env, &key(i)).unwrap();
        }
        t.verify_leaf_links(&env).unwrap();
    }

    #[test]
    fn verify_leaf_links_detects_broken_prev() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        for i in 0..500u32 {
            t.insert(&env, &key(i), b"v").unwrap();
        }
        // Find the second leaf and point its prev somewhere wrong.
        let first = t.cursor_first(&env).unwrap();
        let mut c = first;
        let second_leaf = loop {
            let page_before = c.page;
            c.advance(&env).unwrap();
            if c.page != page_before {
                break c.page.unwrap();
            }
        };
        update_leaf_prev(&env, second_leaf, None).unwrap();
        match t.verify_leaf_links(&env) {
            Err(StorageError::Corrupt(msg)) => assert!(msg.contains("asymmetric"), "{msg}"),
            other => panic!("expected asymmetric-link error, got {other:?}"),
        }
    }

    #[test]
    fn node_read_rejects_mangled_pages() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        for i in 0..50u32 {
            t.insert(&env, &key(i), b"v").unwrap();
        }
        let root = t.root(&env).unwrap();
        // Claim far more entries than the page holds: offsets run off the end.
        env.with_page_mut(root, |p| p[1..3].copy_from_slice(&5000u16.to_le_bytes())).unwrap();
        assert!(matches!(read_node(&env, root), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn anchored_seeks_match_fresh_seeks() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        for i in 0..3000u32 {
            t.insert(&env, &key((i * 7919) % 3000), &key(i)).unwrap();
        }
        let mut anchor = BTreeCursor::new();
        // Mixed probe order: monotone runs, backsteps, jumps, misses.
        let probes: Vec<u32> = (0..200u32)
            .map(|i| (i * 37) % 3100)
            .chain((0..100).map(|i| i * 31))
            .chain((0..100).rev().map(|i| i * 29 + 1))
            .collect();
        for p in probes {
            let fresh = t.seek_ge(&env, &key(p)).unwrap().read(&env).unwrap();
            let anch = t.seek_ge_anchored(&env, &mut anchor, &key(p)).unwrap().read(&env).unwrap();
            assert_eq!(fresh, anch, "seek_ge({p})");
            let fresh = t.seek_le(&env, &key(p)).unwrap().read(&env).unwrap();
            let anch = t.seek_le_anchored(&env, &mut anchor, &key(p)).unwrap().read(&env).unwrap();
            assert_eq!(fresh, anch, "seek_le({p})");
        }
    }

    #[test]
    fn anchored_probe_in_pinned_leaf_reads_one_page() {
        let env = StorageEnv::in_memory(EnvOptions { page_size: 256, pool_pages: 512 });
        let t = BTree::create(&env, 0).unwrap();
        for i in 0..5000u32 {
            t.insert(&env, &key(i), b"").unwrap();
        }
        let mut anchor = BTreeCursor::new();
        // First probe pins the path (full descent).
        t.seek_ge_anchored(&env, &mut anchor, &key(2500)).unwrap();
        assert!(anchor.is_pinned());
        assert!(anchor.pinned_depth() >= 2, "tree of 5000 keys has internal levels");
        // A re-probe of a neighboring key stays inside the pinned leaf:
        // exactly one page access, no meta-page root lookup, no descent.
        env.reset_stats();
        let c = t.seek_ge_anchored(&env, &mut anchor, &key(2501)).unwrap();
        assert_eq!(c.read(&env).unwrap().unwrap().0, key(2501));
        assert_eq!(env.stats().logical_reads, 2, "leaf probe + cursor read only");
    }

    #[test]
    fn anchored_gallop_crosses_leaves_without_full_descent() {
        let env = StorageEnv::in_memory(EnvOptions { page_size: 256, pool_pages: 512 });
        let t = BTree::create(&env, 0).unwrap();
        for i in 0..5000u32 {
            t.insert(&env, &key(i), b"").unwrap();
        }
        let mut anchor = BTreeCursor::new();
        let mut fresh_reads = 0u64;
        let mut anchored_reads = 0u64;
        // Ascending sweep: anchored should hop leaves, fresh re-descends.
        for i in 0..1000u32 {
            env.reset_stats();
            t.seek_ge(&env, &key(i * 5)).unwrap();
            fresh_reads += env.stats().logical_reads;
            env.reset_stats();
            t.seek_ge_anchored(&env, &mut anchor, &key(i * 5)).unwrap();
            anchored_reads += env.stats().logical_reads;
        }
        assert!(
            anchored_reads * 2 <= fresh_reads,
            "anchored sweep ({anchored_reads} reads) should at least halve \
             fresh-descent cost ({fresh_reads} reads)"
        );
    }

    #[test]
    fn anchored_cursor_invalidates_on_mutation() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        for i in (0..500u32).map(|i| i * 2) {
            t.insert(&env, &key(i), b"old").unwrap();
        }
        let mut anchor = BTreeCursor::new();
        let c = t.seek_ge_anchored(&env, &mut anchor, &key(100)).unwrap();
        assert_eq!(c.read(&env).unwrap().unwrap().0, key(100));
        // Mutate: insert the odd key right where the anchor is pinned.
        t.insert(&env, &key(101), b"new").unwrap();
        let c = t.seek_ge_anchored(&env, &mut anchor, &key(101)).unwrap();
        let (k, v) = c.read(&env).unwrap().unwrap();
        assert_eq!((k, v), (key(101), b"new".to_vec()), "post-insert probe sees the insert");
        // Deletes too.
        t.remove(&env, &key(102)).unwrap();
        let c = t.seek_ge_anchored(&env, &mut anchor, &key(102)).unwrap();
        assert_eq!(c.read(&env).unwrap().unwrap().0, key(104));
        // Manual invalidation also forces a re-pin.
        anchor.invalidate();
        assert!(!anchor.is_pinned());
        let c = t.seek_le_anchored(&env, &mut anchor, &key(104)).unwrap();
        assert_eq!(c.read(&env).unwrap().unwrap().0, key(104));
        assert!(anchor.is_pinned());
    }

    #[test]
    fn anchored_seeks_handle_chain_hops_and_ends() {
        let env = mem_env();
        let t = BTree::create(&env, 0).unwrap();
        for i in 1..=300u32 {
            t.insert(&env, &key(i * 10), b"").unwrap();
        }
        let mut anchor = BTreeCursor::new();
        // Below every key: seek_le chains off the left end.
        let c = t.seek_le_anchored(&env, &mut anchor, &key(5)).unwrap();
        assert!(c.read(&env).unwrap().is_none());
        // Above every key: seek_ge chains off the right end.
        let c = t.seek_ge_anchored(&env, &mut anchor, &key(5000)).unwrap();
        assert!(c.read(&env).unwrap().is_none());
        // Between keys after the chain-off probes, both directions.
        let c = t.seek_ge_anchored(&env, &mut anchor, &key(1999)).unwrap();
        assert_eq!(c.read(&env).unwrap().unwrap().0, key(2000));
        let c = t.seek_le_anchored(&env, &mut anchor, &key(1999)).unwrap();
        assert_eq!(c.read(&env).unwrap().unwrap().0, key(1990));
        // Empty tree: anchored seeks are exhausted, not erroneous.
        let empty = BTree::create(&env, 1).unwrap();
        let mut a2 = BTreeCursor::new();
        assert!(empty.seek_ge_anchored(&env, &mut a2, &key(1)).unwrap().read(&env).unwrap().is_none());
        assert!(empty.seek_le_anchored(&env, &mut a2, &key(1)).unwrap().read(&env).unwrap().is_none());
    }

    #[test]
    fn cold_cache_seeks_touch_one_path() {
        let env = StorageEnv::in_memory(EnvOptions { page_size: 256, pool_pages: 512 });
        let t = BTree::create(&env, 0).unwrap();
        for i in 0..5000u32 {
            t.insert(&env, &key(i), b"").unwrap();
        }
        env.clear_cache().unwrap();
        env.reset_stats();
        let c = t.seek_ge(&env, &key(2500)).unwrap();
        assert!(c.is_valid());
        let s = env.stats();
        // A single root-to-leaf descent: disk reads == tree height (+1 for
        // the meta page holding the root pointer).
        assert!(s.disk_reads <= 8, "seek should read one path, read {}", s.disk_reads);
    }
}

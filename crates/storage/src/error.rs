//! Storage error type.

use std::fmt;
use std::io;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The file is not a storage file or has an incompatible format.
    Corrupt(String),
    /// A key/value pair is too large to ever fit in a node page.
    EntryTooLarge { entry_bytes: usize, max_bytes: usize },
    /// A page id is out of range for the file.
    InvalidPage(u32),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt(m) => write!(f, "corrupt storage file: {m}"),
            StorageError::EntryTooLarge { entry_bytes, max_bytes } => write!(
                f,
                "entry of {entry_bytes} bytes exceeds the {max_bytes}-byte page budget"
            ),
            StorageError::InvalidPage(p) => write!(f, "invalid page id {p}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias used across the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

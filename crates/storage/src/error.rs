//! Storage error type.

use std::fmt;
use std::io;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The file is not a storage file or has an incompatible format.
    Corrupt(String),
    /// A key/value pair is too large to ever fit in a node page.
    EntryTooLarge { entry_bytes: usize, max_bytes: usize },
    /// A page id is out of range for the file.
    InvalidPage(u32),
    /// A page's stored CRC-32 does not match its contents: a torn write,
    /// a bit flip, or external tampering.
    ChecksumMismatch { page: u32, stored: u32, computed: u32 },
    /// The file's dirty flag is set: the last writer did not flush and
    /// shut down cleanly, so on-disk structures may be half-written.
    /// Recover by rebuilding the index from the source document.
    DirtyShutdown,
    /// The transaction protocol was violated (nested begin, commit or
    /// abort without an open transaction). A caller bug, not a data
    /// problem: the store itself is unharmed.
    TxnMisuse(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt(m) => write!(f, "corrupt storage file: {m}"),
            StorageError::EntryTooLarge { entry_bytes, max_bytes } => write!(
                f,
                "entry of {entry_bytes} bytes exceeds the {max_bytes}-byte page budget"
            ),
            StorageError::InvalidPage(p) => write!(f, "invalid page id {p}"),
            StorageError::ChecksumMismatch { page, stored, computed } => write!(
                f,
                "checksum mismatch on page {page}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StorageError::DirtyShutdown => write!(
                f,
                "storage file was not shut down cleanly (dirty flag set); rebuild the index"
            ),
            StorageError::TxnMisuse(m) => write!(f, "transaction misuse: {m}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias used across the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

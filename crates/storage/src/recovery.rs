//! Crash recovery: replaying the WAL into the database file.
//!
//! Recovery is a pure pager-to-pager operation — it runs *before* a
//! [`crate::StorageEnv`] opens the database, because a crashed writer
//! leaves the dirty flag set and `StorageEnv::open` (correctly) refuses
//! such files. The protocol:
//!
//! 1. scan the WAL ([`crate::wal::Wal::scan`]), which truncates any torn
//!    tail and yields only transactions whose commit record is intact;
//! 2. write every logged page image back verbatim (the images are full
//!    stamped physical pages), growing the file as needed, and sync;
//! 3. clear the database's dirty flag, restamp the meta page, and sync
//!    again — the last act, so a crash anywhere earlier leaves the file
//!    dirty and recovery simply runs again.
//!
//! **Replay is idempotent**: it writes the same bytes in the same order
//! no matter how many times it runs, and never reads the pages it
//! overwrites. **The commit record is the atomicity point**: a
//! transaction missing its commit record contributes nothing. An *empty*
//! valid WAL plus a dirty database is also recoverable — the env pins
//! un-logged dirty pages in its pool, so nothing of the interrupted
//! transaction can have reached the database file; clearing the flag is
//! sufficient. A dirty database with *no* WAL at all is not recoverable
//! (nothing says what the in-flight writer was doing) and is reported as
//! corruption rather than guessed at.

use crate::checksum::{stamp_trailer, verify_trailer};
use crate::error::{Result, StorageError};
use crate::pager::{FilePager, MemPager, PageId, Pager};
use crate::wal::{Wal, WAL_PAGE_SIZE};
use std::path::Path;

// Mirrors of the private meta-page layout in `env.rs` that recovery must
// touch (see the format documentation there).
const DB_MAGIC: &[u8; 8] = b"XKSTORE2";
const META_PAGE_SIZE: usize = 8;
const META_FLAGS: usize = 14;
const FLAG_DIRTY: u8 = 1;

/// What a recovery pass did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// True if recovery changed the database (replayed pages and/or
    /// cleared the dirty flag).
    pub recovered: bool,
    /// Committed transactions replayed from the WAL.
    pub replayed_txns: usize,
    /// Page images written during replay.
    pub replayed_pages: usize,
    /// True if the WAL scan stopped at a torn tail.
    pub wal_truncated: bool,
    /// True if the database file was marked dirty (a crashed writer).
    pub db_was_dirty: bool,
    /// Epoch of the last replayed transaction (0 if none).
    pub last_epoch: u64,
}

enum MetaState {
    Clean,
    Dirty,
    /// Unreadable or mis-stamped meta page — recoverable only if the WAL
    /// holds a committed image of it.
    Bad,
}

fn inspect_meta(db: &dyn Pager) -> Result<MetaState> {
    if db.page_count() == 0 {
        return Err(StorageError::Corrupt("database has no meta page".into()));
    }
    let mut page = vec![0u8; db.page_size()];
    if db.read_page(PageId(0), &mut page).is_err() || verify_trailer(&page).is_err() {
        return Ok(MetaState::Bad);
    }
    if &page[..8] != DB_MAGIC {
        return Ok(MetaState::Bad);
    }
    if page[META_FLAGS] & FLAG_DIRTY != 0 {
        Ok(MetaState::Dirty)
    } else {
        Ok(MetaState::Clean)
    }
}

/// Replays the WAL on `wal` into the database on `db`. Both are raw
/// pagers — call this before opening a [`crate::StorageEnv`] over `db`.
/// Safe to run any number of times; see the module docs for the
/// invariants.
// xk-analyze: root(durability_order)
pub fn recover(db: &dyn Pager, wal: &dyn Pager) -> Result<RecoveryReport> {
    let meta = inspect_meta(db)?;
    let db_was_dirty = !matches!(meta, MetaState::Clean);
    let mut report = RecoveryReport { db_was_dirty, ..RecoveryReport::default() };

    let Some(outcome) = Wal::scan(wal)? else {
        return match meta {
            MetaState::Clean => Ok(report),
            MetaState::Dirty => Err(StorageError::Corrupt(
                "database is marked dirty but there is no write-ahead log to replay".into(),
            )),
            MetaState::Bad => Err(StorageError::Corrupt(
                "database meta page is unreadable and there is no write-ahead log".into(),
            )),
        };
    };
    report.wal_truncated = outcome.truncated;
    if outcome.db_page_size as usize != db.page_size() {
        return Err(StorageError::Corrupt(format!(
            "WAL page images are {} bytes but the database page size is {}",
            outcome.db_page_size,
            db.page_size()
        )));
    }

    // Replay. Also runs over a *clean* database: a crash between the
    // checkpoint's final sync and the WAL reset leaves already-applied
    // transactions in the log, and rewriting identical bytes is a no-op.
    for txn in &outcome.committed {
        for (page_id, image) in &txn.pages {
            while db.page_count() <= *page_id {
                db.grow()?;
            }
            db.write_page(PageId(*page_id), image)?;
            report.replayed_pages += 1;
        }
        report.last_epoch = txn.epoch;
    }
    report.replayed_txns = outcome.committed.len();
    if report.replayed_txns > 0 {
        db.sync()?;
    }

    // Clear the dirty flag last. The replayed meta image (if any) was
    // captured mid-transaction and carries the flag; a crash before this
    // write leaves the file dirty, so the next recovery runs again.
    if report.replayed_txns > 0 || db_was_dirty {
        let mut page = vec![0u8; db.page_size()];
        db.read_page(PageId(0), &mut page)?;
        if verify_trailer(&page).is_err() || &page[..8] != DB_MAGIC {
            return Err(StorageError::Corrupt(
                "meta page is still unreadable after WAL replay".into(),
            ));
        }
        page[META_FLAGS] &= !FLAG_DIRTY;
        stamp_trailer(&mut page);
        db.write_page(PageId(0), &page)?;
        db.sync()?;
        report.recovered = true;
    }
    Ok(report)
}

/// Reads the page size out of a database file's meta header.
fn db_file_page_size(path: &Path) -> Result<usize> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let mut header = [0u8; 16];
    file.read_exact(&mut header)
        .map_err(|_| StorageError::Corrupt("file too short to hold a meta-page header".into()))?;
    if &header[..8] != DB_MAGIC {
        return Err(StorageError::Corrupt("bad magic".into()));
    }
    let ps = u32::from_le_bytes(
        header[META_PAGE_SIZE..META_PAGE_SIZE + 4].try_into().expect("4-byte page size"),
    ) as usize;
    if !(128..=1 << 24).contains(&ps) || !ps.is_power_of_two() {
        return Err(StorageError::Corrupt(format!("implausible page size {ps} in meta header")));
    }
    Ok(ps)
}

/// File-level recovery: opens `db_path` and `wal_path` and runs
/// [`recover`]. A WAL file with a torn final page (its length not a
/// multiple of [`WAL_PAGE_SIZE`]) is truncated down first — the torn
/// bytes are by definition past the last complete page, which the
/// record-level truncation would discard anyway. A missing or empty WAL
/// file is treated as "no log".
// xk-analyze: root(durability_order)
pub fn recover_files(db_path: &Path, wal_path: &Path) -> Result<RecoveryReport> {
    let ps = db_file_page_size(db_path)?;
    let db = FilePager::open(db_path, ps)?;
    let wal_len = match std::fs::metadata(wal_path) {
        Ok(meta) => meta.len(),
        Err(_) => 0,
    };
    let rounded = wal_len - wal_len % WAL_PAGE_SIZE as u64;
    if rounded == 0 {
        // Missing or headerless WAL: scan of a blank pager yields None.
        return recover(&db, &MemPager::new(WAL_PAGE_SIZE));
    }
    if rounded != wal_len {
        let f = std::fs::OpenOptions::new().write(true).open(wal_path)?;
        f.set_len(rounded)?;
    }
    let wal = FilePager::open(wal_path, WAL_PAGE_SIZE)?;
    recover(&db, &wal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{EnvOptions, StorageEnv};
    use std::sync::Arc;

    fn db_with_meta(dirty: bool) -> Arc<MemPager> {
        let pager = Arc::new(MemPager::new(256));
        let env = StorageEnv::create_with_pager(Box::new(Arc::clone(&pager)), 16).unwrap();
        env.flush().unwrap();
        drop(env);
        if dirty {
            let mut page = vec![0u8; 256];
            pager.read_page(PageId(0), &mut page).unwrap();
            page[META_FLAGS] |= FLAG_DIRTY;
            stamp_trailer(&mut page);
            pager.write_page(PageId(0), &page).unwrap();
        }
        pager
    }

    fn stamped(fill: u8) -> Vec<u8> {
        let mut img = vec![fill; 256];
        img[..8].copy_from_slice(DB_MAGIC); // keep page 0 images meta-shaped
        stamp_trailer(&mut img);
        img
    }

    #[test]
    fn clean_db_and_no_wal_is_a_noop() {
        let db = db_with_meta(false);
        let report = recover(&*db, &MemPager::new(256)).unwrap();
        assert!(!report.recovered);
        assert!(!report.db_was_dirty);
        assert_eq!(report.replayed_txns, 0);
    }

    #[test]
    fn dirty_db_without_wal_is_an_error() {
        let db = db_with_meta(true);
        assert!(recover(&*db, &MemPager::new(256)).is_err());
    }

    #[test]
    fn dirty_db_with_valid_empty_wal_just_clears_the_flag() {
        let db = db_with_meta(true);
        let wal_pager = Arc::new(MemPager::new(256));
        Wal::create(Arc::clone(&wal_pager) as Arc<dyn Pager>, 256).unwrap();
        let report = recover(&*db, &*wal_pager).unwrap();
        assert!(report.recovered);
        assert!(report.db_was_dirty);
        assert_eq!(report.replayed_txns, 0);
        assert!(matches!(inspect_meta(&*db).unwrap(), MetaState::Clean));
    }

    #[test]
    fn replay_applies_committed_images_and_is_idempotent() {
        let db = db_with_meta(true);
        let wal_pager = Arc::new(MemPager::new(256));
        let wal = Wal::create(Arc::clone(&wal_pager) as Arc<dyn Pager>, 256).unwrap();
        // One committed transaction growing the db to 3 pages, plus an
        // uncommitted tail that must not be applied.
        wal.append_begin().unwrap();
        wal.append_image(1, &stamped(0x11)).unwrap();
        wal.append_image(2, &stamped(0x22)).unwrap();
        wal.append_commit(7).unwrap();
        wal.append_begin().unwrap();
        wal.append_image(1, &stamped(0xEE)).unwrap();
        wal.sync().unwrap();

        let report = recover(&*db, &*wal_pager).unwrap();
        assert!(report.recovered);
        assert_eq!(report.replayed_txns, 1);
        assert_eq!(report.replayed_pages, 2);
        assert_eq!(report.last_epoch, 7);
        let mut buf = vec![0u8; 256];
        db.read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf, stamped(0x11), "committed image applied, not the dangling one");
        db.read_page(PageId(2), &mut buf).unwrap();
        assert_eq!(buf, stamped(0x22));

        // Second pass: same writes, same outcome, flag still clear.
        let snapshot: Vec<Vec<u8>> = (0..db.page_count())
            .map(|i| {
                let mut b = vec![0u8; 256];
                db.read_page(PageId(i), &mut b).unwrap();
                b
            })
            .collect();
        let again = recover(&*db, &*wal_pager).unwrap();
        assert_eq!(again.replayed_txns, 1);
        for (i, before) in snapshot.iter().enumerate() {
            let mut b = vec![0u8; 256];
            db.read_page(PageId(i as u32), &mut b).unwrap();
            assert_eq!(&b, before, "replay twice must be byte-identical (page {i})");
        }
    }

    #[test]
    fn page_size_mismatch_is_rejected() {
        let db = db_with_meta(true);
        let wal_pager = Arc::new(MemPager::new(256));
        let wal = Wal::create(Arc::clone(&wal_pager) as Arc<dyn Pager>, 512).unwrap();
        wal.append_begin().unwrap();
        wal.append_commit(2).unwrap();
        wal.sync().unwrap();
        assert!(recover(&*db, &*wal_pager).is_err());
    }

    #[test]
    fn recover_files_rounds_torn_wal_tail_down() {
        let dir = std::env::temp_dir().join(format!("xk-recov-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let db_path = dir.join("idx.db");
        let wal_path = dir.join("idx.db.wal");
        {
            let env = StorageEnv::create(&db_path, EnvOptions { page_size: 256, pool_pages: 16 })
                .unwrap();
            env.flush().unwrap();
        }
        {
            let pager =
                Arc::new(FilePager::create(&wal_path, WAL_PAGE_SIZE).unwrap());
            let wal = Wal::create(Arc::clone(&pager) as Arc<dyn Pager>, 256).unwrap();
            wal.append_begin().unwrap();
            wal.append_image(1, &stamped(0x55)).unwrap();
            wal.append_commit(3).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a torn final append: the file ends mid-page.
        let bytes = std::fs::read(&wal_path).unwrap();
        let mut torn = bytes.clone();
        torn.extend_from_slice(&[0xAB; 100]);
        std::fs::write(&wal_path, &torn).unwrap();

        let report = recover_files(&db_path, &wal_path).unwrap();
        assert_eq!(report.replayed_txns, 1);
        assert_eq!(report.last_epoch, 3);
        assert_eq!(
            std::fs::metadata(&wal_path).unwrap().len() % WAL_PAGE_SIZE as u64,
            0,
            "torn tail truncated to a page boundary"
        );
        // Missing WAL with a clean database: a no-op.
        std::fs::remove_file(&wal_path).unwrap();
        let report = recover_files(&db_path, &wal_path).unwrap();
        assert!(!report.recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Pagers: fixed-size-page backing stores.
//!
//! A [`Pager`] reads and writes whole pages by page id. Two implementations
//! are provided: [`FilePager`] over a real file (positioned reads/writes, no
//! in-process caching — caching is the buffer pool's job) and [`MemPager`]
//! for tests and purely in-memory indexes.
//!
//! Since the storage env went multi-threaded, the trait is `Send + Sync`
//! and every operation takes `&self`: a pager is a shared backing store
//! and each implementation carries whatever interior synchronization its
//! medium needs (none for positioned file I/O on Unix, an `RwLock` for
//! the in-memory page table). Callers — the sharded buffer pool — may
//! issue reads and writes for *different* pages concurrently; operations
//! on the *same* page are serialized above the pager by the page's pool
//! shard, and `grow` may race with nothing (it is only called under the
//! env's write lock).

use crate::error::{Result, StorageError};
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, RwLock};

#[cfg(unix)]
use std::os::unix::fs::FileExt;
#[cfg(not(unix))]
use std::sync::Mutex;

/// Identifier of a page within a storage file. Page 0 is the meta page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// The meta page of every storage file.
    pub const META: PageId = PageId(0);

    /// Sentinel encoding for "no page" in on-disk links.
    pub const NONE_RAW: u32 = u32::MAX;

    /// Encodes an optional page id for on-disk storage.
    pub fn encode_opt(p: Option<PageId>) -> u32 {
        p.map_or(Self::NONE_RAW, |p| p.0)
    }

    /// Decodes an optional page id from on-disk storage.
    pub fn decode_opt(raw: u32) -> Option<PageId> {
        if raw == Self::NONE_RAW {
            None
        } else {
            Some(PageId(raw))
        }
    }
}

/// A fixed-size-page backing store, shareable across threads.
pub trait Pager: Send + Sync {
    /// The page size in bytes. Constant for the lifetime of the pager.
    fn page_size(&self) -> usize;

    /// Number of pages currently in the store.
    fn page_count(&self) -> u32;

    /// Reads page `id` into `buf` (`buf.len() == page_size`).
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Writes `buf` to page `id` (`buf.len() == page_size`).
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Appends a zeroed page and returns its id. Callers must serialize
    /// `grow` externally (the storage env calls it under its write lock).
    fn grow(&self) -> Result<PageId>;

    /// Ensures all written pages are durable.
    fn sync(&self) -> Result<()>;
}

/// Shared handles delegate: an `Arc<P>` is a pager whenever `P` is, so a
/// backing store can be shared between a [`crate::env::StorageEnv`] and a
/// crash-recovery pass (or a [`crate::FaultPager`] and the probe that
/// re-opens its bytes after a simulated crash).
impl<P: Pager + ?Sized> Pager for Arc<P> {
    fn page_size(&self) -> usize {
        (**self).page_size()
    }

    fn page_count(&self) -> u32 {
        (**self).page_count()
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        (**self).read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        (**self).write_page(id, buf)
    }

    fn grow(&self) -> Result<PageId> {
        (**self).grow()
    }

    fn sync(&self) -> Result<()> {
        (**self).sync()
    }
}

/// A pager over an ordinary file. Every `read_page` is a positioned read
/// against the file — the buffer pool above decides what stays in memory.
/// On Unix, positioned reads/writes (`pread`/`pwrite`) need no locking at
/// all; elsewhere a mutex serializes the seek+access pairs.
pub struct FilePager {
    file: File,
    page_size: usize,
    page_count: AtomicU32,
    #[cfg(not(unix))]
    io_lock: Mutex<()>,
}

impl FilePager {
    /// Creates a new storage file (truncating any existing one) with one
    /// zeroed meta page.
    pub fn create(path: &Path, page_size: usize) -> Result<FilePager> {
        assert!(page_size >= 128 && page_size.is_power_of_two(), "unreasonable page size");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let pager = FilePager {
            file,
            page_size,
            page_count: AtomicU32::new(0),
            #[cfg(not(unix))]
            io_lock: Mutex::new(()),
        };
        pager.grow()?; // page 0 = meta
        Ok(pager)
    }

    /// Opens an existing storage file. The caller is responsible for
    /// validating the meta page (see [`crate::env::StorageEnv::open`]).
    // xk-analyze: allow(panic_path, reason = "every caller passes a validated (detect_page_size) or constant non-zero page size")
    pub fn open(path: &Path, page_size: usize) -> Result<FilePager> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of the page size {page_size}"
            )));
        }
        let page_count = (len / page_size as u64) as u32;
        if page_count == 0 {
            return Err(StorageError::Corrupt("file has no meta page".into()));
        }
        Ok(FilePager {
            file,
            page_size,
            page_count: AtomicU32::new(page_count),
            #[cfg(not(unix))]
            io_lock: Mutex::new(()),
        })
    }

    fn offset(&self, id: PageId) -> Result<u64> {
        if id.0 >= self.page_count.load(Ordering::Acquire) {
            return Err(StorageError::InvalidPage(id.0));
        }
        Ok(id.0 as u64 * self.page_size as u64)
    }
}

impl Pager for FilePager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn page_count(&self) -> u32 {
        self.page_count.load(Ordering::Acquire)
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        let off = self.offset(id)?;
        #[cfg(unix)]
        {
            self.file.read_exact_at(buf, off)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let _io = self.io_lock.lock().unwrap_or_else(|e| e.into_inner());
            let mut f = &self.file;
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(buf)?;
        }
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        let off = self.offset(id)?;
        #[cfg(unix)]
        {
            self.file.write_all_at(buf, off)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom, Write};
            let _io = self.io_lock.lock().unwrap_or_else(|e| e.into_inner());
            let mut f = &self.file;
            f.seek(SeekFrom::Start(off))?;
            f.write_all(buf)?;
        }
        Ok(())
    }

    fn grow(&self) -> Result<PageId> {
        let count = self.page_count.load(Ordering::Acquire);
        let id = PageId(count);
        let new_len = (count as u64 + 1) * self.page_size as u64;
        self.file.set_len(new_len)?;
        self.page_count.store(count + 1, Ordering::Release);
        Ok(id)
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// An in-memory pager for tests and ephemeral indexes.
pub struct MemPager {
    pages: RwLock<Vec<Box<[u8]>>>,
    page_size: usize,
}

impl MemPager {
    /// Creates an in-memory store with one zeroed meta page.
    pub fn new(page_size: usize) -> MemPager {
        assert!(page_size >= 128 && page_size.is_power_of_two(), "unreasonable page size");
        let p = MemPager { pages: RwLock::new(Vec::new()), page_size };
        // xk-analyze: allow(panic_path, reason = "MemPager::grow only extends a Vec and cannot fail")
        p.grow().expect("in-memory grow cannot fail");
        p
    }
}

impl Pager for MemPager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn page_count(&self) -> u32 {
        self.pages.read().unwrap_or_else(|e| e.into_inner()).len() as u32
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let pages = self.pages.read().unwrap_or_else(|e| e.into_inner());
        let page = pages.get(id.0 as usize).ok_or(StorageError::InvalidPage(id.0))?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let mut pages = self.pages.write().unwrap_or_else(|e| e.into_inner());
        let page = pages.get_mut(id.0 as usize).ok_or(StorageError::InvalidPage(id.0))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn grow(&self) -> Result<PageId> {
        let mut pages = self.pages.write().unwrap_or_else(|e| e.into_inner());
        let id = PageId(pages.len() as u32);
        pages.push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(id)
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(pager: &dyn Pager) {
        let ps = pager.page_size();
        let a = pager.grow().unwrap();
        let b = pager.grow().unwrap();
        assert_ne!(a, b);
        let mut pa = vec![0xAAu8; ps];
        pa[0] = 1;
        let mut pb = vec![0xBBu8; ps];
        pb[0] = 2;
        pager.write_page(a, &pa).unwrap();
        pager.write_page(b, &pb).unwrap();
        let mut buf = vec![0u8; ps];
        pager.read_page(a, &mut buf).unwrap();
        assert_eq!(buf, pa);
        pager.read_page(b, &mut buf).unwrap();
        assert_eq!(buf, pb);
    }

    #[test]
    fn mem_pager_roundtrip() {
        let p = MemPager::new(256);
        roundtrip(&p);
        assert_eq!(p.page_count(), 3);
    }

    #[test]
    fn file_pager_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("xk-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.db");
        {
            let p = FilePager::create(&path, 512).unwrap();
            roundtrip(&p);
            p.sync().unwrap();
        }
        {
            let p = FilePager::open(&path, 512).unwrap();
            assert_eq!(p.page_count(), 3);
            let mut buf = vec![0u8; 512];
            p.read_page(PageId(1), &mut buf).unwrap();
            assert_eq!(buf[1], 0xAA);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_page_is_an_error() {
        let p = MemPager::new(256);
        let mut buf = vec![0u8; 256];
        assert!(matches!(
            p.read_page(PageId(99), &mut buf),
            Err(StorageError::InvalidPage(99))
        ));
    }

    #[test]
    fn page_id_optional_encoding() {
        assert_eq!(PageId::encode_opt(None), u32::MAX);
        assert_eq!(PageId::encode_opt(Some(PageId(7))), 7);
        assert_eq!(PageId::decode_opt(u32::MAX), None);
        assert_eq!(PageId::decode_opt(7), Some(PageId(7)));
    }

    #[test]
    fn pagers_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FilePager>();
        assert_send_sync::<MemPager>();
        assert_send_sync::<Box<dyn Pager>>();
    }

    #[test]
    fn concurrent_distinct_page_access() {
        let p = MemPager::new(256);
        let ids: Vec<PageId> = (0..8).map(|_| p.grow().unwrap()).collect();
        std::thread::scope(|s| {
            for (i, &id) in ids.iter().enumerate() {
                let p = &p;
                s.spawn(move || {
                    let fill = (i + 1) as u8;
                    for _ in 0..200 {
                        p.write_page(id, &vec![fill; 256]).unwrap();
                        let mut buf = vec![0u8; 256];
                        p.read_page(id, &mut buf).unwrap();
                        assert!(buf.iter().all(|&b| b == fill), "page {id:?} torn");
                    }
                });
            }
        });
    }
}

//! Sequential list storage: page chains for keyword lists.
//!
//! Section 4 of the paper describes a second B-tree layout for the Scan
//! Eager and Stack algorithms, where each keyword's node list is read
//! front-to-back. Here that layout is a chain of pages per list: each page
//! holds `[next page (4) | payload length (2) | payload]`. Reading a list
//! of `|S|` compressed entries costs `ceil(|S| / B)` disk accesses, which
//! is exactly the term the paper's disk-access analysis charges the
//! scanning algorithms per list.

use crate::env::StorageEnv;
use crate::error::{Result, StorageError};
use crate::pager::PageId;

const LIST_HDR: usize = 6; // next(4) + len(2)

/// Location and size of a stored list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListHandle {
    /// First page of the chain.
    pub head: PageId,
    /// Last page of the chain (where [`ListAppender`] continues).
    pub tail: PageId,
    /// Total payload bytes across the chain.
    pub total_bytes: u64,
    /// Number of logical entries (maintained by the caller; the store
    /// itself is byte-oriented).
    pub entry_count: u64,
}

/// Size of [`ListHandle::encode`]'s output.
pub const LIST_HANDLE_BYTES: usize = 24;

impl ListHandle {
    /// Serializes the handle for storage as a B+tree value.
    pub fn encode(&self) -> [u8; LIST_HANDLE_BYTES] {
        let mut out = [0u8; LIST_HANDLE_BYTES];
        out[..4].copy_from_slice(&self.head.0.to_le_bytes());
        out[4..8].copy_from_slice(&self.tail.0.to_le_bytes());
        out[8..16].copy_from_slice(&self.total_bytes.to_le_bytes());
        out[16..24].copy_from_slice(&self.entry_count.to_le_bytes());
        out
    }

    /// Deserializes a handle written by [`ListHandle::encode`].
    // xk-analyze: allow(panic_path, reason = "fixed-width slices are guarded by the LIST_HANDLE_BYTES length check at the top")
    pub fn decode(bytes: &[u8]) -> Result<ListHandle> {
        if bytes.len() != LIST_HANDLE_BYTES {
            return Err(StorageError::Corrupt(format!(
                "list handle must be {LIST_HANDLE_BYTES} bytes, got {}",
                bytes.len()
            )));
        }
        Ok(ListHandle {
            head: PageId(u32::from_le_bytes(bytes[..4].try_into().unwrap())),
            tail: PageId(u32::from_le_bytes(bytes[4..8].try_into().unwrap())),
            total_bytes: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            entry_count: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
        })
    }
}

/// Streaming writer that builds a page chain.
pub struct ListWriter {
    head: Option<PageId>,
    current: Option<PageId>,
    /// Bytes buffered for the current page.
    buffer: Vec<u8>,
    payload_capacity: usize,
    total_bytes: u64,
    entry_count: u64,
}

impl ListWriter {
    /// Starts a new list in `env`.
    pub fn new(env: &StorageEnv) -> ListWriter {
        ListWriter {
            head: None,
            current: None,
            buffer: Vec::new(),
            payload_capacity: env.page_size() - LIST_HDR,
            total_bytes: 0,
            entry_count: 0,
        }
    }

    /// Appends one logical entry (a length-prefixed byte record).
    pub fn append(&mut self, env: &StorageEnv, record: &[u8]) -> Result<()> {
        assert!(
            record.len() + 2 <= self.payload_capacity,
            "record larger than a page payload"
        );
        let framed_len = 2 + record.len();
        if self.buffer.len() + framed_len > self.payload_capacity {
            self.flush_page(env, false)?;
        }
        self.buffer.extend_from_slice(&(record.len() as u16).to_le_bytes());
        self.buffer.extend_from_slice(record);
        self.total_bytes += framed_len as u64;
        self.entry_count += 1;
        Ok(())
    }

    // xk-analyze: allow(panic_path, reason = "append() seals the buffer before it can exceed the page payload, so LIST_HDR + buffer.len() fits the page")
    fn flush_page(&mut self, env: &StorageEnv, last: bool) -> Result<()> {
        let page = env.allocate_page()?;
        if self.head.is_none() {
            self.head = Some(page);
        }
        if let Some(prev) = self.current {
            // Patch the previous page's next pointer.
            env.with_page_mut(prev, |p| {
                p[..4].copy_from_slice(&page.0.to_le_bytes());
            })?;
        }
        let buffer = std::mem::take(&mut self.buffer);
        env.with_page_mut(page, |p| {
            p[..4].copy_from_slice(&PageId::NONE_RAW.to_le_bytes());
            p[4..6].copy_from_slice(&(buffer.len() as u16).to_le_bytes());
            p[LIST_HDR..LIST_HDR + buffer.len()].copy_from_slice(&buffer);
        })?;
        self.current = Some(page);
        let _ = last;
        Ok(())
    }

    /// Finishes the list and returns its handle. An empty list still
    /// occupies one (empty) page so the handle is always valid.
    // xk-analyze: allow(panic_path, reason = "flush_page unconditionally sets head and current before these expects run")
    pub fn finish(mut self, env: &StorageEnv) -> Result<ListHandle> {
        self.flush_page(env, true)?;
        Ok(ListHandle {
            head: self.head.expect("flush_page sets head"),
            tail: self.current.expect("flush_page sets current"),
            total_bytes: self.total_bytes,
            entry_count: self.entry_count,
        })
    }
}

/// Appends records to an existing chain, continuing in the tail page's
/// free space and growing the chain as needed. Used by incremental index
/// maintenance (new documents appended to an indexed corpus).
pub struct ListAppender {
    handle: ListHandle,
    payload_capacity: usize,
    /// Bytes already used in the tail page.
    tail_used: usize,
}

impl ListAppender {
    /// Positions an appender at the end of `handle`'s chain.
    // xk-analyze: allow(panic_path, reason = "fixed 2-byte slice of the tail header cannot fail try_into")
    pub fn open(env: &StorageEnv, handle: ListHandle) -> Result<ListAppender> {
        let payload_capacity = env.page_size() - LIST_HDR;
        let tail_used = env.with_page(handle.tail, |p| {
            u16::from_le_bytes(p[4..6].try_into().expect("2-byte list length")) as usize
        })?;
        if tail_used > payload_capacity {
            return Err(StorageError::Corrupt(format!(
                "list tail page {} claims {tail_used} payload bytes, capacity is {payload_capacity}",
                handle.tail.0
            )));
        }
        Ok(ListAppender { handle, payload_capacity, tail_used })
    }

    /// Appends one record to the chain.
    // xk-analyze: allow(panic_path, reason = "a fresh tail page is chained whenever tail_used + framed_len would overflow payload_capacity, so the write range fits")
    pub fn append(&mut self, env: &StorageEnv, record: &[u8]) -> Result<()> {
        assert!(
            record.len() + 2 <= self.payload_capacity,
            "record larger than a page payload"
        );
        let framed_len = 2 + record.len();
        if self.tail_used + framed_len > self.payload_capacity {
            // Seal the tail and chain a fresh page.
            let page = env.allocate_page()?;
            env.with_page_mut(self.handle.tail, |p| {
                p[..4].copy_from_slice(&page.0.to_le_bytes());
            })?;
            env.with_page_mut(page, |p| {
                p[..4].copy_from_slice(&PageId::NONE_RAW.to_le_bytes());
                p[4..6].copy_from_slice(&0u16.to_le_bytes());
            })?;
            self.handle.tail = page;
            self.tail_used = 0;
        }
        let offset = LIST_HDR + self.tail_used;
        env.with_page_mut(self.handle.tail, |p| {
            p[offset..offset + 2].copy_from_slice(&(record.len() as u16).to_le_bytes());
            p[offset + 2..offset + framed_len].copy_from_slice(record);
            p[4..6].copy_from_slice(&((self.tail_used + framed_len) as u16).to_le_bytes());
        })?;
        self.tail_used += framed_len;
        self.handle.total_bytes += framed_len as u64;
        self.handle.entry_count += 1;
        Ok(())
    }

    /// Returns the updated handle (the caller persists it).
    pub fn finish(self) -> ListHandle {
        self.handle
    }
}

/// Streaming reader over a page chain. Each page is fetched through the
/// buffer pool exactly once per pass, so sequential consumption of a list
/// of `N` pages costs `N` logical reads (and `N` disk reads when cold).
pub struct ListReader {
    next_page: Option<PageId>,
    page_buf: Vec<u8>,
    page_len: usize,
    offset: usize,
    remaining_entries: u64,
    total_entries: u64,
}

impl ListReader {
    /// Opens a reader at the head of `handle`'s chain.
    pub fn new(handle: &ListHandle) -> ListReader {
        ListReader {
            next_page: Some(handle.head),
            page_buf: Vec::new(),
            page_len: 0,
            offset: 0,
            remaining_entries: handle.entry_count,
            total_entries: handle.entry_count,
        }
    }

    /// Number of entries not yet returned.
    pub fn remaining(&self) -> u64 {
        self.remaining_entries
    }

    /// Reads the next record, or `None` at the end of the list.
    // xk-analyze: allow(panic_path, reason = "record ranges are validated against page_len (itself checked against the page) before slicing; length fields are fixed-width")
    pub fn next_record(&mut self, env: &StorageEnv) -> Result<Option<Vec<u8>>> {
        if self.remaining_entries == 0 {
            return Ok(None);
        }
        loop {
            if self.offset < self.page_len {
                if self.offset + 2 > self.page_len {
                    return Err(StorageError::Corrupt(format!(
                        "list record header at offset {} overruns page payload of {} bytes",
                        self.offset, self.page_len
                    )));
                }
                let len = u16::from_le_bytes(
                    self.page_buf[self.offset..self.offset + 2]
                        .try_into()
                        .expect("2-byte record length"),
                ) as usize;
                let start = self.offset + 2;
                if start + len > self.page_len {
                    return Err(StorageError::Corrupt(format!(
                        "list record of {len} bytes at offset {} overruns page payload of {} bytes",
                        self.offset, self.page_len
                    )));
                }
                let rec = self.page_buf[start..start + len].to_vec();
                self.offset = start + len;
                self.remaining_entries -= 1;
                return Ok(Some(rec));
            }
            let Some(page) = self.next_page else {
                // remaining_entries > 0 here (the fast path returned
                // otherwise): a chain that ends early is a truncated list,
                // and silently reporting end-of-list would drop matches
                // from query answers.
                return Err(StorageError::Corrupt(format!(
                    "list chain ended with {} of {} entries unread",
                    self.remaining_entries, self.total_entries
                )));
            };
            let (next, len, data) = env.with_page(page, |p| {
                let next = PageId::decode_opt(u32::from_le_bytes(
                    p[..4].try_into().expect("4-byte next link"),
                ));
                let len = u16::from_le_bytes(p[4..6].try_into().expect("2-byte list length"))
                    as usize;
                if LIST_HDR + len > p.len() {
                    return Err(StorageError::Corrupt(format!(
                        "list page {} claims {len} payload bytes, capacity is {}",
                        page.0,
                        p.len() - LIST_HDR
                    )));
                }
                Ok((next, len, p[LIST_HDR..LIST_HDR + len].to_vec()))
            })??;
            self.next_page = next;
            self.page_len = len;
            self.page_buf = data;
            self.offset = 0;
        }
    }
}

/// Frees every page of a list chain.
// xk-analyze: allow(panic_path, reason = "fixed 4-byte slice of the next link cannot fail try_into")
pub fn free_list(env: &StorageEnv, handle: &ListHandle) -> Result<()> {
    let mut cur = Some(handle.head);
    let mut freed = 0u64;
    let limit = env.page_count() as u64;
    while let Some(page) = cur {
        if freed >= limit {
            return Err(StorageError::Corrupt(format!(
                "list chain starting at page {} exceeds the file's {limit} pages (cycle?)",
                handle.head.0
            )));
        }
        let next = env.with_page(page, |p| {
            PageId::decode_opt(u32::from_le_bytes(p[..4].try_into().expect("4-byte next link")))
        })?;
        env.free_page(page)?;
        freed += 1;
        cur = next;
    }
    Ok(())
}

/// What [`inspect_chain`] learned about a list chain.
#[derive(Debug, Default, Clone)]
pub struct ChainInfo {
    /// Every page of the chain, head to tail, in link order.
    pub pages: Vec<PageId>,
    /// Framed payload bytes actually present (length prefixes included),
    /// comparable to [`ListHandle::total_bytes`].
    pub payload_bytes: u64,
    /// Records actually present, comparable to [`ListHandle::entry_count`].
    pub records: u64,
}

/// Walks a chain front to back, validating structure as it goes: link
/// reachability, per-page payload lengths, record framing, and the
/// absence of cycles (bounded by the file's page count). Returns what it
/// found so callers (e.g. `xksearch verify`) can cross-check the handle's
/// claimed tail, byte total, and entry count.
pub fn inspect_chain(env: &StorageEnv, handle: &ListHandle) -> Result<ChainInfo> {
    let mut info = ChainInfo::default();
    let limit = env.page_count() as usize;
    let mut cur = Some(handle.head);
    while let Some(page) = cur {
        if info.pages.len() >= limit {
            return Err(StorageError::Corrupt(format!(
                "list chain starting at page {} exceeds the file's {limit} pages (cycle?)",
                handle.head.0
            )));
        }
        let step = env.with_page(page, |p| {
            let next =
                PageId::decode_opt(u32::from_le_bytes(p[..4].try_into().expect("4-byte next link")));
            let len =
                u16::from_le_bytes(p[4..6].try_into().expect("2-byte list length")) as usize;
            if LIST_HDR + len > p.len() {
                return Err(StorageError::Corrupt(format!(
                    "list page {} claims {len} payload bytes, capacity is {}",
                    page.0,
                    p.len() - LIST_HDR
                )));
            }
            // Re-frame the records to validate their lengths.
            let mut offset = 0usize;
            let mut records = 0u64;
            while offset < len {
                if offset + 2 > len {
                    return Err(StorageError::Corrupt(format!(
                        "list page {}: record header at offset {offset} overruns payload of {len} bytes",
                        page.0
                    )));
                }
                let rec_len = u16::from_le_bytes(
                    p[LIST_HDR + offset..LIST_HDR + offset + 2]
                        .try_into()
                        .expect("2-byte record length"),
                ) as usize;
                offset += 2 + rec_len;
                if offset > len {
                    return Err(StorageError::Corrupt(format!(
                        "list page {}: record of {rec_len} bytes overruns payload of {len} bytes",
                        page.0
                    )));
                }
                records += 1;
            }
            Ok((next, len as u64, records))
        })??;
        let (next, page_bytes, page_records) = step;
        info.pages.push(page);
        info.payload_bytes += page_bytes;
        info.records += page_records;
        cur = next;
    }
    if info.pages.last() != Some(&handle.tail) {
        return Err(StorageError::Corrupt(format!(
            "list chain starting at page {} ends at page {:?}, but the handle claims tail {}",
            handle.head.0,
            info.pages.last().map(|p| p.0),
            handle.tail.0
        )));
    }
    if info.payload_bytes != handle.total_bytes || info.records != handle.entry_count {
        return Err(StorageError::Corrupt(format!(
            "list chain starting at page {} holds {} records / {} bytes, but the handle claims {} / {}",
            handle.head.0, info.records, info.payload_bytes, handle.entry_count, handle.total_bytes
        )));
    }
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvOptions;

    fn mem_env() -> StorageEnv {
        StorageEnv::in_memory(EnvOptions { page_size: 256, pool_pages: 64 })
    }

    #[test]
    fn roundtrip_small() {
        let env = mem_env();
        let mut w = ListWriter::new(&env);
        for i in 0..10u32 {
            w.append(&env, &i.to_le_bytes()).unwrap();
        }
        let h = w.finish(&env).unwrap();
        assert_eq!(h.entry_count, 10);
        let mut r = ListReader::new(&h);
        for i in 0..10u32 {
            assert_eq!(r.next_record(&env).unwrap().unwrap(), i.to_le_bytes());
        }
        assert_eq!(r.next_record(&env).unwrap(), None);
    }

    #[test]
    fn roundtrip_multi_page_variable_records() {
        let env = mem_env();
        let mut w = ListWriter::new(&env);
        let records: Vec<Vec<u8>> =
            (0..500).map(|i| vec![(i % 251) as u8; i % 37 + 1]).collect();
        for r in &records {
            w.append(&env, r).unwrap();
        }
        let h = w.finish(&env).unwrap();
        assert_eq!(h.entry_count, 500);
        let mut r = ListReader::new(&h);
        for expect in &records {
            assert_eq!(&r.next_record(&env).unwrap().unwrap(), expect);
        }
        assert_eq!(r.next_record(&env).unwrap(), None);
    }

    #[test]
    fn empty_list() {
        let env = mem_env();
        let w = ListWriter::new(&env);
        let h = w.finish(&env).unwrap();
        assert_eq!(h.entry_count, 0);
        let mut r = ListReader::new(&h);
        assert_eq!(r.next_record(&env).unwrap(), None);
    }

    #[test]
    fn handle_encode_decode() {
        let h = ListHandle {
            head: PageId(7),
            tail: PageId(99),
            total_bytes: 123456,
            entry_count: 42,
        };
        assert_eq!(ListHandle::decode(&h.encode()).unwrap(), h);
        assert!(ListHandle::decode(b"short").is_err());
    }

    #[test]
    fn appender_continues_a_finished_chain() {
        let env = mem_env();
        let mut w = ListWriter::new(&env);
        for i in 0..7u32 {
            w.append(&env, &i.to_le_bytes()).unwrap();
        }
        let h = w.finish(&env).unwrap();
        let mut a = ListAppender::open(&env, h).unwrap();
        for i in 7..200u32 {
            a.append(&env, &i.to_le_bytes()).unwrap();
        }
        let h2 = a.finish();
        assert_eq!(h2.entry_count, 200);
        assert_eq!(h2.head, h.head, "head is stable across appends");
        let mut r = ListReader::new(&h2);
        for i in 0..200u32 {
            assert_eq!(r.next_record(&env).unwrap().unwrap(), i.to_le_bytes());
        }
        assert_eq!(r.next_record(&env).unwrap(), None);
    }

    #[test]
    fn appender_on_empty_chain() {
        let env = mem_env();
        let h = ListWriter::new(&env).finish(&env).unwrap();
        let mut a = ListAppender::open(&env, h).unwrap();
        a.append(&env, b"first").unwrap();
        let h = a.finish();
        assert_eq!(h.entry_count, 1);
        let mut r = ListReader::new(&h);
        assert_eq!(r.next_record(&env).unwrap().unwrap(), b"first");
    }

    #[test]
    fn interleaved_appends_with_variable_sizes() {
        let env = mem_env();
        let mut records: Vec<Vec<u8>> = Vec::new();
        let mut w = ListWriter::new(&env);
        for i in 0..50usize {
            let r = vec![i as u8; i % 60 + 1];
            w.append(&env, &r).unwrap();
            records.push(r);
        }
        let mut h = w.finish(&env).unwrap();
        // Several separate append sessions, as separate documents arrive.
        for session in 0..4 {
            let mut a = ListAppender::open(&env, h).unwrap();
            for i in 0..30usize {
                let r = vec![(session * 40 + i) as u8; (i * 3) % 80 + 1];
                a.append(&env, &r).unwrap();
                records.push(r);
            }
            h = a.finish();
        }
        let mut r = ListReader::new(&h);
        for expect in &records {
            assert_eq!(&r.next_record(&env).unwrap().unwrap(), expect);
        }
        assert_eq!(r.next_record(&env).unwrap(), None);
    }

    #[test]
    fn sequential_read_costs_one_access_per_page_when_cold() {
        let env = mem_env();
        let mut w = ListWriter::new(&env);
        let record = [0u8; 20];
        for _ in 0..200 {
            w.append(&env, &record).unwrap();
        }
        let h = w.finish(&env).unwrap();
        // 22 bytes framed per record; page payload = usable size - header.
        let payload = env.page_size() - LIST_HDR;
        let expected_pages = (200usize * 22).div_ceil(payload);
        env.clear_cache().unwrap();
        env.reset_stats();
        let mut r = ListReader::new(&h);
        while r.next_record(&env).unwrap().is_some() {}
        let reads = env.stats().disk_reads;
        assert!(
            (reads as i64 - expected_pages as i64).abs() <= 1,
            "expected about {expected_pages} cold reads, got {reads}"
        );
    }

    #[test]
    fn free_list_returns_pages() {
        let env = mem_env();
        let mut w = ListWriter::new(&env);
        for _ in 0..300 {
            w.append(&env, &[1u8; 30]).unwrap();
        }
        let h = w.finish(&env).unwrap();
        let before = env.page_count();
        free_list(&env, &h).unwrap();
        // Freed pages are reused by subsequent allocations.
        let mut w2 = ListWriter::new(&env);
        for _ in 0..300 {
            w2.append(&env, &[2u8; 30]).unwrap();
        }
        let h2 = w2.finish(&env).unwrap();
        assert_eq!(env.page_count(), before, "second list reuses freed pages");
        let mut r = ListReader::new(&h2);
        assert_eq!(r.next_record(&env).unwrap().unwrap(), [2u8; 30]);
    }

    #[test]
    #[should_panic(expected = "record larger than a page payload")]
    fn oversized_record_panics() {
        let env = mem_env();
        let mut w = ListWriter::new(&env);
        w.append(&env, &[0u8; 512]).unwrap();
    }

    #[test]
    fn inspect_chain_accepts_healthy_lists() {
        let env = mem_env();
        let mut w = ListWriter::new(&env);
        for i in 0..300u32 {
            w.append(&env, &i.to_le_bytes()).unwrap();
        }
        let h = w.finish(&env).unwrap();
        let info = inspect_chain(&env, &h).unwrap();
        assert_eq!(info.records, 300);
        assert_eq!(info.payload_bytes, h.total_bytes);
        assert_eq!(info.pages.first(), Some(&h.head));
        assert_eq!(info.pages.last(), Some(&h.tail));
        assert!(info.pages.len() > 1, "300 records span several pages");
    }

    #[test]
    fn inspect_chain_flags_bad_counts_and_cycles() {
        let env = mem_env();
        let mut w = ListWriter::new(&env);
        for i in 0..300u32 {
            w.append(&env, &i.to_le_bytes()).unwrap();
        }
        let h = w.finish(&env).unwrap();

        let lying = ListHandle { entry_count: h.entry_count + 5, ..h };
        assert!(inspect_chain(&env, &lying).is_err(), "count mismatch detected");

        let wrong_tail = ListHandle { tail: h.head, ..h };
        assert!(inspect_chain(&env, &wrong_tail).is_err(), "tail mismatch detected");

        // Splice the tail's next pointer back to the head: a cycle.
        env.with_page_mut(h.tail, |p| p[..4].copy_from_slice(&h.head.0.to_le_bytes()))
            .unwrap();
        match inspect_chain(&env, &h) {
            Err(StorageError::Corrupt(msg)) => assert!(msg.contains("cycle"), "{msg}"),
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn reader_rejects_overrunning_record_lengths() {
        let env = mem_env();
        let mut w = ListWriter::new(&env);
        w.append(&env, b"abc").unwrap();
        let h = w.finish(&env).unwrap();
        // Corrupt the record's length prefix to point past the payload.
        env.with_page_mut(h.head, |p| {
            p[LIST_HDR..LIST_HDR + 2].copy_from_slice(&500u16.to_le_bytes());
        })
        .unwrap();
        let mut r = ListReader::new(&h);
        assert!(matches!(r.next_record(&env), Err(StorageError::Corrupt(_))));
    }
}

//! # xk-storage
//!
//! The disk substrate for the XKSearch reproduction — the stand-in for the
//! Berkeley DB B-trees used by the paper (Xu & Papakonstantinou, SIGMOD
//! 2005, Section 4):
//!
//! * [`pager`] — fixed-size page files ([`FilePager`]) and an in-memory
//!   twin ([`MemPager`]);
//! * [`env`] — [`StorageEnv`]: an LRU buffer pool with disk-access
//!   accounting ([`IoStats`]), page allocation, named root slots, and
//!   cache control for the hot/cold-cache experiments;
//! * [`btree`] — a disk B+tree with doubly-linked leaves whose
//!   [`BTree::seek_ge`]/[`BTree::seek_le`] realize the paper's right/left
//!   match primitives;
//! * [`liststore`] — sequential page chains for the Scan/Stack keyword-
//!   list layout;
//! * [`checksum`] — the CRC-32 stamped into every page's trailer and
//!   verified on buffer-pool misses (format v2, `XKSTORE2`);
//! * [`fault`] — [`FaultPager`]: deterministic, seeded fault injection
//!   (failed I/O, torn writes, bit flips) for crash-simulation tests;
//! * [`wal`] — [`Wal`]: a checksummed, length-prefixed write-ahead log
//!   with generation-numbered resets and group-commit fsync batching;
//! * [`recovery`] — [`recover`]/[`recover_files`]: idempotent replay of
//!   committed WAL transactions into the database file, with torn-tail
//!   truncation.
//!
//! ```
//! use xk_storage::{StorageEnv, EnvOptions, BTree};
//! let mut env = StorageEnv::in_memory(EnvOptions::default());
//! let tree = BTree::create(&env, 0).unwrap();
//! tree.insert(&env, b"key", b"value").unwrap();
//! assert_eq!(tree.get(&env, b"key").unwrap(), Some(b"value".to_vec()));
//! ```

pub mod btree;
pub mod checksum;
pub mod env;
pub mod error;
pub mod fault;
pub mod liststore;
pub mod pager;
pub mod recovery;
pub mod stats;
pub mod wal;

pub use btree::{BTree, BTreeCursor, Cursor};
pub use checksum::crc32;
pub use env::{
    EnvOptions, ReadPin, StorageEnv, TxnCommit, FORMAT_VERSION, PAGE_TRAILER, ROOT_SLOTS,
};
pub use error::{Result, StorageError};
pub use recovery::{recover, recover_files, RecoveryReport};
pub use fault::{FaultConfig, FaultPager, FaultProbe};
pub use liststore::{
    free_list, inspect_chain, ChainInfo, ListAppender, ListHandle, ListReader, ListWriter,
    LIST_HANDLE_BYTES,
};
pub use pager::{FilePager, MemPager, PageId, Pager};
pub use stats::IoStats;
pub use wal::{CommittedTxn, ScanOutcome, Wal, WAL_PAGE_SIZE};

//! # xk-storage
//!
//! The disk substrate for the XKSearch reproduction — the stand-in for the
//! Berkeley DB B-trees used by the paper (Xu & Papakonstantinou, SIGMOD
//! 2005, Section 4):
//!
//! * [`pager`] — fixed-size page files ([`FilePager`]) and an in-memory
//!   twin ([`MemPager`]);
//! * [`env`] — [`StorageEnv`]: an LRU buffer pool with disk-access
//!   accounting ([`IoStats`]), page allocation, named root slots, and
//!   cache control for the hot/cold-cache experiments;
//! * [`btree`] — a disk B+tree with doubly-linked leaves whose
//!   [`BTree::seek_ge`]/[`BTree::seek_le`] realize the paper's right/left
//!   match primitives;
//! * [`liststore`] — sequential page chains for the Scan/Stack keyword-
//!   list layout.
//!
//! ```
//! use xk_storage::{StorageEnv, EnvOptions, BTree};
//! let mut env = StorageEnv::in_memory(EnvOptions::default());
//! let tree = BTree::create(&mut env, 0).unwrap();
//! tree.insert(&mut env, b"key", b"value").unwrap();
//! assert_eq!(tree.get(&mut env, b"key").unwrap(), Some(b"value".to_vec()));
//! ```

pub mod btree;
pub mod env;
pub mod error;
pub mod liststore;
pub mod pager;
pub mod stats;

pub use btree::{BTree, Cursor};
pub use env::{EnvOptions, StorageEnv, ROOT_SLOTS};
pub use error::{Result, StorageError};
pub use liststore::{free_list, ListAppender, ListHandle, ListReader, ListWriter, LIST_HANDLE_BYTES};
pub use pager::{FilePager, MemPager, PageId, Pager};
pub use stats::IoStats;

//! The storage environment: a pager fronted by an LRU buffer pool.
//!
//! [`StorageEnv`] is the single entry point the index structures use. It
//! provides page access through closures (`with_page` / `with_page_mut`),
//! page allocation with a free list, named root slots in the meta page, a
//! small user-metadata blob, and cache control for the hot/cold-cache
//! experiments (`clear_cache` drops every cached page so the next access of
//! each page is a real disk read).

use crate::error::{Result, StorageError};
use crate::pager::{FilePager, MemPager, PageId, Pager};
use crate::stats::IoStats;
use std::collections::HashMap;
use std::path::Path;

const MAGIC: &[u8; 8] = b"XKSTORE1";
const META_FREELIST: usize = 12;
const META_ROOTS: usize = 16;
/// Number of named B+tree root slots in the meta page.
pub const ROOT_SLOTS: usize = 8;
const META_BLOB_LEN: usize = META_ROOTS + 4 * ROOT_SLOTS;
const META_BLOB: usize = META_BLOB_LEN + 4;

/// Configuration for creating or opening a [`StorageEnv`].
#[derive(Debug, Clone)]
pub struct EnvOptions {
    /// Page size in bytes (power of two, >= 128). Default 4096.
    pub page_size: usize,
    /// Buffer pool capacity in pages. Default 1024 (4 MiB at 4 KiB pages).
    pub pool_pages: usize,
}

impl Default for EnvOptions {
    fn default() -> Self {
        EnvOptions { page_size: 4096, pool_pages: 1024 }
    }
}

struct Frame {
    data: Box<[u8]>,
    dirty: bool,
    /// Intrusive LRU links: indices into `StorageEnv::frames`.
    prev: usize,
    next: usize,
    page: PageId,
}

const NIL: usize = usize::MAX;

/// A pager fronted by an LRU buffer pool with I/O accounting.
pub struct StorageEnv {
    pager: Box<dyn Pager>,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    free_frames: Vec<usize>,
    lru_head: usize, // most recently used
    lru_tail: usize, // least recently used
    capacity: usize,
    stats: IoStats,
}

impl StorageEnv {
    /// Creates a new storage file at `path`.
    pub fn create(path: impl AsRef<Path>, options: EnvOptions) -> Result<StorageEnv> {
        let pager = FilePager::create(path.as_ref(), options.page_size)?;
        let mut env = Self::with_pager(Box::new(pager), options.pool_pages);
        env.init_meta()?;
        Ok(env)
    }

    /// Opens an existing storage file at `path`.
    pub fn open(path: impl AsRef<Path>, options: EnvOptions) -> Result<StorageEnv> {
        let pager = FilePager::open(path.as_ref(), options.page_size)?;
        let mut env = Self::with_pager(Box::new(pager), options.pool_pages);
        env.check_meta()?;
        Ok(env)
    }

    /// Creates an ephemeral in-memory environment (tests, transient work).
    pub fn in_memory(options: EnvOptions) -> StorageEnv {
        let pager = MemPager::new(options.page_size);
        let mut env = Self::with_pager(Box::new(pager), options.pool_pages);
        env.init_meta().expect("in-memory init cannot fail");
        env
    }

    fn with_pager(pager: Box<dyn Pager>, pool_pages: usize) -> StorageEnv {
        StorageEnv {
            pager,
            frames: Vec::new(),
            map: HashMap::new(),
            free_frames: Vec::new(),
            lru_head: NIL,
            lru_tail: NIL,
            capacity: pool_pages.max(8),
            stats: IoStats::default(),
        }
    }

    fn init_meta(&mut self) -> Result<()> {
        let ps = self.pager.page_size();
        self.with_page_mut(PageId::META, |page| {
            page[..8].copy_from_slice(MAGIC);
            page[8..12].copy_from_slice(&(ps as u32).to_le_bytes());
            page[META_FREELIST..META_FREELIST + 4]
                .copy_from_slice(&PageId::NONE_RAW.to_le_bytes());
            for slot in 0..ROOT_SLOTS {
                let off = META_ROOTS + slot * 4;
                page[off..off + 4].copy_from_slice(&PageId::NONE_RAW.to_le_bytes());
            }
            page[META_BLOB_LEN..META_BLOB_LEN + 4].copy_from_slice(&0u32.to_le_bytes());
        })
    }

    fn check_meta(&mut self) -> Result<()> {
        let expected = self.pager.page_size() as u32;
        self.with_page(PageId::META, |page| {
            if &page[..8] != MAGIC {
                return Err(StorageError::Corrupt("bad magic".into()));
            }
            let ps = u32::from_le_bytes(page[8..12].try_into().unwrap());
            if ps != expected {
                return Err(StorageError::Corrupt(format!(
                    "file page size {ps} does not match configured {expected}"
                )));
            }
            Ok(())
        })?
    }

    /// The page size of the backing store.
    pub fn page_size(&self) -> usize {
        self.pager.page_size()
    }

    /// Number of pages in the backing store (including meta and free pages).
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Zeroes the I/O counters.
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    // ---- buffer pool ----

    fn lru_unlink(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.lru_head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.lru_tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn lru_push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.lru_head;
        if self.lru_head != NIL {
            self.frames[self.lru_head].prev = idx;
        }
        self.lru_head = idx;
        if self.lru_tail == NIL {
            self.lru_tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.lru_head != idx {
            self.lru_unlink(idx);
            self.lru_push_front(idx);
        }
    }

    /// Loads `id` into the pool (if absent) and returns its frame index.
    fn fetch(&mut self, id: PageId) -> Result<usize> {
        self.stats.logical_reads += 1;
        if let Some(&idx) = self.map.get(&id) {
            self.touch(idx);
            return Ok(idx);
        }
        self.stats.disk_reads += 1;
        let idx = self.acquire_frame()?;
        let ps = self.pager.page_size();
        if self.frames[idx].data.len() != ps {
            self.frames[idx].data = vec![0u8; ps].into_boxed_slice();
        }
        self.pager.read_page(id, &mut self.frames[idx].data)?;
        self.frames[idx].dirty = false;
        self.frames[idx].page = id;
        self.map.insert(id, idx);
        self.lru_push_front(idx);
        Ok(idx)
    }

    /// Finds a free frame, evicting the LRU page if the pool is full.
    fn acquire_frame(&mut self) -> Result<usize> {
        if let Some(idx) = self.free_frames.pop() {
            return Ok(idx);
        }
        if self.frames.len() < self.capacity {
            let ps = self.pager.page_size();
            self.frames.push(Frame {
                data: vec![0u8; ps].into_boxed_slice(),
                dirty: false,
                prev: NIL,
                next: NIL,
                page: PageId(u32::MAX),
            });
            return Ok(self.frames.len() - 1);
        }
        // Evict the least recently used page.
        let victim = self.lru_tail;
        debug_assert_ne!(victim, NIL, "pool capacity is at least 8");
        self.lru_unlink(victim);
        let page = self.frames[victim].page;
        if self.frames[victim].dirty {
            self.stats.disk_writes += 1;
            // Borrow dance: take the buffer out while writing.
            let data = std::mem::take(&mut self.frames[victim].data);
            let res = self.pager.write_page(page, &data);
            self.frames[victim].data = data;
            res?;
        }
        self.stats.evictions += 1;
        self.map.remove(&page);
        Ok(victim)
    }

    /// Runs `f` with read access to page `id`.
    pub fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let idx = self.fetch(id)?;
        Ok(f(&self.frames[idx].data))
    }

    /// Runs `f` with write access to page `id`; the page is marked dirty.
    pub fn with_page_mut<R>(&mut self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let idx = self.fetch(id)?;
        self.frames[idx].dirty = true;
        Ok(f(&mut self.frames[idx].data))
    }

    /// Copies page `id` out of the pool.
    pub fn read_page_copy(&mut self, id: PageId) -> Result<Vec<u8>> {
        self.with_page(id, |p| p.to_vec())
    }

    /// Writes back every dirty page (the pool keeps its contents).
    pub fn flush(&mut self) -> Result<()> {
        for idx in 0..self.frames.len() {
            if self.frames[idx].dirty && self.frames[idx].page.0 != u32::MAX {
                self.stats.disk_writes += 1;
                let data = std::mem::take(&mut self.frames[idx].data);
                let res = self.pager.write_page(self.frames[idx].page, &data);
                self.frames[idx].data = data;
                res?;
                self.frames[idx].dirty = false;
            }
        }
        self.pager.sync()?;
        Ok(())
    }

    /// Flushes and then drops every cached page — the *cold cache* state of
    /// the paper's experiments: the next access to any page is a disk read.
    pub fn clear_cache(&mut self) -> Result<()> {
        self.flush()?;
        self.map.clear();
        self.frames.clear();
        self.free_frames.clear();
        self.lru_head = NIL;
        self.lru_tail = NIL;
        Ok(())
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.map.len()
    }

    // ---- allocation ----

    /// Allocates a page: pops the free list or grows the file.
    pub fn allocate_page(&mut self) -> Result<PageId> {
        let head = self.freelist_head()?;
        if let Some(free) = head {
            let next = self.with_page(free, |p| {
                u32::from_le_bytes(p[..4].try_into().unwrap())
            })?;
            self.set_freelist_head(PageId::decode_opt(next))?;
            // Zero the page for the new user.
            self.with_page_mut(free, |p| p.fill(0))?;
            return Ok(free);
        }
        let id = self.pager.grow()?;
        // Materialize a zeroed frame for the new page so the first access
        // does not count as a disk read (the page has never been written).
        let idx = self.acquire_frame()?;
        self.frames[idx].data.fill(0);
        self.frames[idx].dirty = true;
        self.frames[idx].page = id;
        self.map.insert(id, idx);
        self.lru_push_front(idx);
        Ok(id)
    }

    /// Returns a page to the free list.
    pub fn free_page(&mut self, id: PageId) -> Result<()> {
        assert_ne!(id, PageId::META, "cannot free the meta page");
        let head = self.freelist_head()?;
        self.with_page_mut(id, |p| {
            p[..4].copy_from_slice(&PageId::encode_opt(head).to_le_bytes());
        })?;
        self.set_freelist_head(Some(id))
    }

    fn freelist_head(&mut self) -> Result<Option<PageId>> {
        self.with_page(PageId::META, |p| {
            PageId::decode_opt(u32::from_le_bytes(
                p[META_FREELIST..META_FREELIST + 4].try_into().unwrap(),
            ))
        })
    }

    fn set_freelist_head(&mut self, head: Option<PageId>) -> Result<()> {
        self.with_page_mut(PageId::META, |p| {
            p[META_FREELIST..META_FREELIST + 4]
                .copy_from_slice(&PageId::encode_opt(head).to_le_bytes());
        })
    }

    // ---- named roots & user blob ----

    /// Reads named root slot `slot` (for B+tree roots and list directories).
    pub fn root_slot(&mut self, slot: usize) -> Result<Option<PageId>> {
        assert!(slot < ROOT_SLOTS);
        self.with_page(PageId::META, |p| {
            let off = META_ROOTS + slot * 4;
            PageId::decode_opt(u32::from_le_bytes(p[off..off + 4].try_into().unwrap()))
        })
    }

    /// Writes named root slot `slot`.
    pub fn set_root_slot(&mut self, slot: usize, page: Option<PageId>) -> Result<()> {
        assert!(slot < ROOT_SLOTS);
        self.with_page_mut(PageId::META, |p| {
            let off = META_ROOTS + slot * 4;
            p[off..off + 4].copy_from_slice(&PageId::encode_opt(page).to_le_bytes());
        })
    }

    /// Maximum size of the user metadata blob for this page size.
    pub fn user_blob_capacity(&self) -> usize {
        self.page_size() - META_BLOB
    }

    /// Stores an application metadata blob in the meta page (e.g. the
    /// serialized level table). Must fit in [`Self::user_blob_capacity`].
    pub fn set_user_blob(&mut self, blob: &[u8]) -> Result<()> {
        if blob.len() > self.user_blob_capacity() {
            return Err(StorageError::EntryTooLarge {
                entry_bytes: blob.len(),
                max_bytes: self.user_blob_capacity(),
            });
        }
        self.with_page_mut(PageId::META, |p| {
            p[META_BLOB_LEN..META_BLOB_LEN + 4]
                .copy_from_slice(&(blob.len() as u32).to_le_bytes());
            p[META_BLOB..META_BLOB + blob.len()].copy_from_slice(blob);
        })
    }

    /// Reads the application metadata blob.
    pub fn user_blob(&mut self) -> Result<Vec<u8>> {
        self.with_page(PageId::META, |p| {
            let len = u32::from_le_bytes(
                p[META_BLOB_LEN..META_BLOB_LEN + 4].try_into().unwrap(),
            ) as usize;
            p[META_BLOB..META_BLOB + len].to_vec()
        })
    }
}

impl Drop for StorageEnv {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(pool_pages: usize) -> StorageEnv {
        StorageEnv::in_memory(EnvOptions { page_size: 256, pool_pages })
    }

    #[test]
    fn allocate_write_read() {
        let mut env = mem(16);
        let a = env.allocate_page().unwrap();
        let b = env.allocate_page().unwrap();
        assert_ne!(a, b);
        env.with_page_mut(a, |p| p[10] = 42).unwrap();
        env.with_page_mut(b, |p| p[10] = 43).unwrap();
        assert_eq!(env.with_page(a, |p| p[10]).unwrap(), 42);
        assert_eq!(env.with_page(b, |p| p[10]).unwrap(), 43);
    }

    #[test]
    fn free_list_reuses_pages() {
        let mut env = mem(16);
        let a = env.allocate_page().unwrap();
        let before = env.page_count();
        env.free_page(a).unwrap();
        let b = env.allocate_page().unwrap();
        assert_eq!(a, b, "freed page must be reused");
        assert_eq!(env.page_count(), before);
        // Reused page is zeroed.
        assert_eq!(env.with_page(b, |p| p[0]).unwrap(), 0);
    }

    #[test]
    fn eviction_and_stats() {
        let mut env = mem(8); // tiny pool
        let pages: Vec<_> = (0..20).map(|_| env.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            env.with_page_mut(p, |d| d[0] = i as u8).unwrap();
        }
        // All data survives eviction.
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(env.with_page(p, |d| d[0]).unwrap(), i as u8);
        }
        let s = env.stats();
        assert!(s.evictions > 0, "pool of 8 with 20 pages must evict");
        assert!(s.disk_reads > 0);
    }

    #[test]
    fn clear_cache_forces_disk_reads() {
        let mut env = mem(64);
        let p = env.allocate_page().unwrap();
        env.with_page_mut(p, |d| d[0] = 7).unwrap();
        env.clear_cache().unwrap();
        env.reset_stats();
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 7);
        assert_eq!(env.stats().disk_reads, 1, "cold cache: first access reads disk");
        env.reset_stats();
        env.with_page(p, |d| d[0]).unwrap();
        assert_eq!(env.stats().disk_reads, 0, "hot cache: second access hits pool");
    }

    #[test]
    fn root_slots_persist() {
        let mut env = mem(16);
        assert_eq!(env.root_slot(3).unwrap(), None);
        env.set_root_slot(3, Some(PageId(9))).unwrap();
        assert_eq!(env.root_slot(3).unwrap(), Some(PageId(9)));
        env.set_root_slot(3, None).unwrap();
        assert_eq!(env.root_slot(3).unwrap(), None);
    }

    #[test]
    fn user_blob_roundtrip() {
        let mut env = mem(16);
        assert_eq!(env.user_blob().unwrap(), Vec::<u8>::new());
        env.set_user_blob(b"level-table-v1").unwrap();
        assert_eq!(env.user_blob().unwrap(), b"level-table-v1");
        let too_big = vec![0u8; env.user_blob_capacity() + 1];
        assert!(env.set_user_blob(&too_big).is_err());
    }

    #[test]
    fn file_env_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("xk-env-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("env.db");
        let opts = EnvOptions { page_size: 512, pool_pages: 16 };
        let page;
        {
            let mut env = StorageEnv::create(&path, opts.clone()).unwrap();
            page = env.allocate_page().unwrap();
            env.with_page_mut(page, |p| p[5] = 99).unwrap();
            env.set_root_slot(0, Some(page)).unwrap();
            env.set_user_blob(b"hello").unwrap();
            env.flush().unwrap();
        }
        {
            let mut env = StorageEnv::open(&path, opts).unwrap();
            assert_eq!(env.root_slot(0).unwrap(), Some(page));
            assert_eq!(env.user_blob().unwrap(), b"hello");
            assert_eq!(env.with_page(page, |p| p[5]).unwrap(), 99);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_wrong_page_size() {
        let dir = std::env::temp_dir().join(format!("xk-env2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("env.db");
        StorageEnv::create(&path, EnvOptions { page_size: 512, pool_pages: 16 }).unwrap();
        let err = StorageEnv::open(&path, EnvOptions { page_size: 1024, pool_pages: 16 });
        assert!(err.is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_keeps_hot_pages() {
        let mut env = mem(8);
        let hot = env.allocate_page().unwrap();
        env.with_page_mut(hot, |p| p[0] = 1).unwrap();
        // Touch `hot` between every new allocation; it must never be evicted.
        for _ in 0..30 {
            let p = env.allocate_page().unwrap();
            env.with_page(p, |_| ()).unwrap();
            env.with_page(hot, |_| ()).unwrap();
        }
        let before = env.stats().disk_reads;
        env.with_page(hot, |_| ()).unwrap();
        assert_eq!(env.stats().disk_reads, before, "hot page stays cached");
    }
}

//! The storage environment: a pager fronted by a sharded LRU buffer pool.
//!
//! [`StorageEnv`] is the single entry point the index structures use. It
//! provides page access through closures (`with_page` / `with_page_mut`),
//! page allocation with a free list, named root slots in the meta page, a
//! small user-metadata blob, and cache control for the hot/cold-cache
//! experiments (`clear_cache` drops every cached page so the next access of
//! each page is a real disk read).
//!
//! # Concurrency model
//!
//! The env is `Send + Sync` and all operations take `&self`; it is shared
//! across query threads behind an `Arc`. Three mechanisms cooperate:
//!
//! * **Sharded buffer pool.** Frames live in N shards, page `p` belonging
//!   to shard `p % N`, each shard a `Mutex` around its own frame table,
//!   page map, and intrusive LRU list. Readers of different pages contend
//!   only when the pages share a shard; a page's bytes are only ever
//!   touched under its shard lock, so closures passed to `with_page` see
//!   a stable snapshot. N is derived from the pool size
//!   (`clamp(pool_pages / 8, 1, 8)`) so tiny test pools keep exact
//!   single-LRU eviction semantics while production-sized pools spread
//!   across 8 shards.
//! * **Atomic I/O stats.** Counters are relaxed atomics
//!   ([`crate::AtomicIoStats`]); `stats()` returns a snapshot.
//! * **A single write lock.** Every mutating operation (`with_page_mut`,
//!   `allocate_page`, `free_page`, root-slot/blob writes, `flush`,
//!   `clear_cache`) serializes on one mutex that also guards the
//!   dirty-shutdown flag state. Lock order is strictly *write lock →
//!   one shard lock*; readers take only a shard lock. The read path can
//!   still write to disk — evicting a dirty page writes it back — but a
//!   page can only *become* dirty under the write lock, after the
//!   write-ahead dirty mark below is on disk, so eviction write-backs
//!   never race the clean-shutdown protocol (see `flush`).
//!
//! # On-disk format v2 (`XKSTORE2`)
//!
//! Every physical page ends in an 8-byte trailer: a little-endian CRC-32
//! of the payload plus four reserved zero bytes. Callers never see the
//! trailer — [`StorageEnv::page_size`] reports the *usable* payload size
//! and the page closures receive only the payload slice. Checksums are
//! stamped on every write-back and verified on every buffer-pool miss, so
//! a torn or bit-flipped page surfaces as
//! [`StorageError::ChecksumMismatch`] naming the page instead of being
//! garbage-decoded. A page whose payload and trailer are entirely zero is
//! exempt: that is the state of a freshly grown page that was never
//! written (a real CRC-32 of a zero payload is nonzero, so the exemption
//! cannot mask a corrupted written page).
//!
//! The meta page (page 0) additionally carries a format version and a
//! dirty flag. The flag is forced to disk *before* the first data-page
//! mutation can reach the file and cleared as the last step of
//! [`StorageEnv::flush`]; [`StorageEnv::open`] refuses files whose flag
//! is still set with [`StorageError::DirtyShutdown`], which is how a
//! crashed writer is detected on the next open.

use crate::checksum::crc32;
use crate::error::{Result, StorageError};
use crate::pager::{FilePager, MemPager, PageId, Pager};
use crate::stats::{AtomicIoStats, IoStats};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

const MAGIC: &[u8; 8] = b"XKSTORE2";
const MAGIC_V1: &[u8; 8] = b"XKSTORE1";
/// On-disk format version stored in the meta page.
pub const FORMAT_VERSION: u16 = 2;
/// Bytes reserved at the end of every physical page for the CRC trailer.
pub const PAGE_TRAILER: usize = 8;

// Meta-page payload layout.
const META_PAGE_SIZE: usize = 8; // u32: physical page size
const META_VERSION: usize = 12; // u16: FORMAT_VERSION
const META_FLAGS: usize = 14; // u8: FLAG_* bits ([15] reserved)
const META_FREELIST: usize = 16;
const META_ROOTS: usize = 20;
/// Number of named B+tree root slots in the meta page.
pub const ROOT_SLOTS: usize = 8;
const META_BLOB_LEN: usize = META_ROOTS + 4 * ROOT_SLOTS;
const META_BLOB: usize = META_BLOB_LEN + 4;

const FLAG_DIRTY: u8 = 1;

/// Upper bound on buffer-pool shards; the actual count also never
/// exceeds `pool_pages / 8` so small pools degrade to one exact LRU.
const MAX_SHARDS: usize = 8;

/// Configuration for creating or opening a [`StorageEnv`].
#[derive(Debug, Clone)]
pub struct EnvOptions {
    /// Physical page size in bytes (power of two, >= 128). Default 4096.
    /// Used when *creating* a file; `open` reads the size from the meta
    /// header instead.
    pub page_size: usize,
    /// Buffer pool capacity in pages. Default 1024 (4 MiB at 4 KiB pages).
    /// The pool is split into `clamp(pool_pages / 8, 1, 8)` LRU shards.
    pub pool_pages: usize,
}

impl Default for EnvOptions {
    fn default() -> Self {
        EnvOptions { page_size: 4096, pool_pages: 1024 }
    }
}

struct Frame {
    data: Box<[u8]>,
    dirty: bool,
    /// Intrusive LRU links: indices into `Shard::frames`.
    prev: usize,
    next: usize,
    page: PageId,
}

const NIL: usize = usize::MAX;

/// One buffer-pool shard: an independent LRU over its slice of pages.
struct Shard {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    free_frames: Vec<usize>,
    lru_head: usize, // most recently used
    lru_tail: usize, // least recently used
}

impl Shard {
    fn new() -> Shard {
        Shard {
            frames: Vec::new(),
            map: HashMap::new(),
            free_frames: Vec::new(),
            lru_head: NIL,
            lru_tail: NIL,
        }
    }

    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    fn lru_unlink(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.lru_head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.lru_tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    fn lru_push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.lru_head;
        if self.lru_head != NIL {
            self.frames[self.lru_head].prev = idx;
        }
        self.lru_head = idx;
        if self.lru_tail == NIL {
            self.lru_tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.lru_head != idx {
            self.lru_unlink(idx);
            self.lru_push_front(idx);
        }
    }
}

/// Mutation-side state guarded by the env's write lock.
struct WriteState {
    /// True while the on-disk meta page has a *clear* dirty flag, i.e.
    /// the file claims to be clean. Any mutation must first push a dirty
    /// meta page to disk (see `ensure_dirty_marked`).
    clean_on_disk: bool,
}

/// A pager fronted by a sharded LRU buffer pool with I/O accounting.
/// `Send + Sync`: share it across query threads behind an `Arc`.
pub struct StorageEnv {
    pager: Box<dyn Pager>,
    shards: Vec<Mutex<Shard>>,
    /// Frame capacity *per shard*.
    shard_capacity: usize,
    stats: AtomicIoStats,
    /// Verify page checksums on buffer-pool misses (on by default; the
    /// bench harness turns it off to measure the overhead).
    verify_checksums: AtomicBool,
    /// Serializes every mutating operation; see the module docs.
    write_state: Mutex<WriteState>,
    /// Monotone counter bumped by every mutating operation. Anchored
    /// B+tree cursors snapshot it when they pin a root-to-leaf path and
    /// treat any later bump as an invalidation signal (conservative: any
    /// write anywhere in the env discards pinned paths).
    data_version: AtomicU64,
}

impl StorageEnv {
    /// Creates a new storage file at `path`.
    pub fn create(path: impl AsRef<Path>, options: EnvOptions) -> Result<StorageEnv> {
        let pager = FilePager::create(path.as_ref(), options.page_size)?;
        Self::create_with_pager(Box::new(pager), options.pool_pages)
    }

    /// Opens an existing storage file at `path`. The page size is read
    /// from the meta header, not from `options`; a header whose size is
    /// implausible or inconsistent with the file length is rejected as
    /// [`StorageError::Corrupt`], and a file whose dirty flag is set is
    /// rejected as [`StorageError::DirtyShutdown`].
    pub fn open(path: impl AsRef<Path>, options: EnvOptions) -> Result<StorageEnv> {
        let path = path.as_ref();
        let page_size = Self::detect_page_size(path, options.page_size)?;
        let pager = FilePager::open(path, page_size)?;
        Self::open_with_pager(Box::new(pager), options.pool_pages)
    }

    /// Creates an ephemeral in-memory environment (tests, transient work).
    pub fn in_memory(options: EnvOptions) -> StorageEnv {
        let pager = MemPager::new(options.page_size);
        Self::create_with_pager(Box::new(pager), options.pool_pages)
            .expect("in-memory init cannot fail")
    }

    /// Initializes a fresh environment over an arbitrary pager (e.g. a
    /// [`crate::FaultPager`] for crash-simulation tests). The pager must
    /// be empty or about to be overwritten.
    pub fn create_with_pager(pager: Box<dyn Pager>, pool_pages: usize) -> Result<StorageEnv> {
        let env = Self::with_pager(pager, pool_pages);
        env.init_meta()?;
        Ok(env)
    }

    /// Opens an environment over an arbitrary pager holding an existing
    /// `XKSTORE2` image. The pager's page size must match the file's.
    pub fn open_with_pager(pager: Box<dyn Pager>, pool_pages: usize) -> Result<StorageEnv> {
        let env = Self::with_pager(pager, pool_pages);
        env.check_meta()?;
        env.write_lock().clean_on_disk = true;
        Ok(env)
    }

    fn with_pager(pager: Box<dyn Pager>, pool_pages: usize) -> StorageEnv {
        let capacity = pool_pages.max(8);
        let nshards = (capacity / 8).clamp(1, MAX_SHARDS);
        StorageEnv {
            pager,
            shards: (0..nshards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_capacity: capacity.div_ceil(nshards),
            stats: AtomicIoStats::default(),
            verify_checksums: AtomicBool::new(true),
            write_state: Mutex::new(WriteState { clean_on_disk: false }),
            data_version: AtomicU64::new(0),
        }
    }

    /// Reads the page size out of the meta header so `open` does not have
    /// to trust `EnvOptions::page_size`. `configured` is only quoted in
    /// error messages.
    fn detect_page_size(path: &Path, configured: usize) -> Result<usize> {
        use std::io::Read;
        let mut file = std::fs::File::open(path)?;
        let mut header = [0u8; 16];
        file.read_exact(&mut header).map_err(|_| {
            StorageError::Corrupt("file too short to hold a meta-page header".into())
        })?;
        if &header[..8] == MAGIC_V1 {
            return Err(StorageError::Corrupt(
                "file uses the retired XKSTORE1 format (no checksums); rebuild the index".into(),
            ));
        }
        if &header[..8] != MAGIC {
            return Err(StorageError::Corrupt("bad magic".into()));
        }
        let ps = u32::from_le_bytes(
            header[META_PAGE_SIZE..META_PAGE_SIZE + 4]
                .try_into()
                .expect("4-byte slice of a 16-byte header"),
        ) as usize;
        if !(128..=1 << 24).contains(&ps) || !ps.is_power_of_two() {
            return Err(StorageError::Corrupt(format!(
                "implausible page size {ps} in meta header (configured page size: {configured})"
            )));
        }
        let len = file.metadata()?.len();
        if len % ps as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of the header page size {ps} \
                 (configured page size: {configured})"
            )));
        }
        Ok(ps)
    }

    fn init_meta(&self) -> Result<()> {
        let ps = self.pager.page_size();
        self.with_page_mut(PageId::META, |page| {
            page[..8].copy_from_slice(MAGIC);
            page[META_PAGE_SIZE..META_PAGE_SIZE + 4]
                .copy_from_slice(&(ps as u32).to_le_bytes());
            page[META_VERSION..META_VERSION + 2]
                .copy_from_slice(&FORMAT_VERSION.to_le_bytes());
            // Born dirty: the file is not consistent until the first flush.
            page[META_FLAGS] = FLAG_DIRTY;
            page[META_FREELIST..META_FREELIST + 4]
                .copy_from_slice(&PageId::NONE_RAW.to_le_bytes());
            for slot in 0..ROOT_SLOTS {
                let off = META_ROOTS + slot * 4;
                page[off..off + 4].copy_from_slice(&PageId::NONE_RAW.to_le_bytes());
            }
            page[META_BLOB_LEN..META_BLOB_LEN + 4].copy_from_slice(&0u32.to_le_bytes());
        })
    }

    fn check_meta(&self) -> Result<()> {
        let expected = self.pager.page_size() as u32;
        self.with_page(PageId::META, |page| {
            if &page[..8] == MAGIC_V1 {
                return Err(StorageError::Corrupt(
                    "file uses the retired XKSTORE1 format (no checksums); rebuild the index"
                        .into(),
                ));
            }
            if &page[..8] != MAGIC {
                return Err(StorageError::Corrupt("bad magic".into()));
            }
            let ps = u32::from_le_bytes(
                page[META_PAGE_SIZE..META_PAGE_SIZE + 4]
                    .try_into()
                    .expect("4-byte slice of the meta payload"),
            );
            if ps != expected {
                return Err(StorageError::Corrupt(format!(
                    "file page size {ps} does not match pager page size {expected}"
                )));
            }
            let version = u16::from_le_bytes(
                page[META_VERSION..META_VERSION + 2]
                    .try_into()
                    .expect("2-byte slice of the meta payload"),
            );
            if version != FORMAT_VERSION {
                return Err(StorageError::Corrupt(format!(
                    "unsupported format version {version} (this build reads {FORMAT_VERSION})"
                )));
            }
            if page[META_FLAGS] & FLAG_DIRTY != 0 {
                return Err(StorageError::DirtyShutdown);
            }
            Ok(())
        })?
    }

    /// The usable payload size of a page — the physical page size minus
    /// the CRC trailer. All structure capacities derive from this.
    pub fn page_size(&self) -> usize {
        self.pager.page_size() - PAGE_TRAILER
    }

    /// The physical page size of the backing store (payload + trailer).
    pub fn physical_page_size(&self) -> usize {
        self.pager.page_size()
    }

    /// Number of pages in the backing store (including meta and free pages).
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Current I/O counters (a snapshot of the atomic counters).
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Zeroes the I/O counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Enables or disables CRC verification on buffer-pool misses.
    /// On by default; the checksum-overhead bench flips it off to measure
    /// the cost. Writes are stamped either way.
    pub fn set_verify_checksums(&self, on: bool) {
        self.verify_checksums.store(on, Ordering::Relaxed);
    }

    /// Number of buffer-pool shards (derived from the pool size).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current data version: a counter bumped by every mutating
    /// operation (`with_page_mut`, `allocate_page`, `free_page`, root-slot
    /// and blob writes). Anchored cursors compare this against the value
    /// they pinned to detect that their cached root-to-leaf path may be
    /// stale. Relaxed ordering suffices: mutations and the probes that
    /// observe them are already ordered by the env's locks.
    pub fn data_version(&self) -> u64 {
        self.data_version.load(Ordering::Relaxed)
    }

    fn bump_data_version(&self) {
        self.data_version.fetch_add(1, Ordering::Relaxed);
    }

    // ---- checksum trailer ----

    /// Recomputes and stores the CRC trailer of a physical page buffer.
    // xk-analyze: allow(panic_path, reason = "trailer offsets are derived from the fixed page size")
    fn stamp_page(data: &mut [u8]) {
        let payload_end = data.len() - PAGE_TRAILER;
        let crc = crc32(&data[..payload_end]);
        data[payload_end..payload_end + 4].copy_from_slice(&crc.to_le_bytes());
        data[payload_end + 4..].fill(0);
    }

    /// Checks the CRC trailer of a freshly read physical page buffer.
    // xk-analyze: allow(panic_path, reason = "trailer offsets are derived from the fixed page size")
    fn verify_page(data: &[u8], id: PageId) -> Result<()> {
        let payload_end = data.len() - PAGE_TRAILER;
        let stored = u32::from_le_bytes(
            data[payload_end..payload_end + 4]
                .try_into()
                .expect("4-byte slice of the page trailer"),
        );
        let computed = crc32(&data[..payload_end]);
        if stored == computed {
            return Ok(());
        }
        if stored == 0 && data.iter().all(|&b| b == 0) {
            // A grown-but-never-written page; crc32 of a zero payload is
            // nonzero, so this cannot shadow a real checksum.
            return Ok(());
        }
        Err(StorageError::ChecksumMismatch { page: id.0, stored, computed })
    }

    // ---- buffer pool ----

    // xk-analyze: allow(panic_path, reason = "slot is id modulo shards.len(), which is non-zero by construction")
    fn shard(&self, id: PageId) -> MutexGuard<'_, Shard> {
        let slot = id.0 as usize % self.shards.len();
        self.shards[slot].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn write_lock(&self) -> MutexGuard<'_, WriteState> {
        self.write_state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Loads `id` into its shard (if absent) and returns its frame index.
    /// Pool misses verify the page checksum before the page is admitted.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "miss path reads the page into the frame this shard guard owns; the documented pool design")
    fn fetch(&self, shard: &mut Shard, id: PageId) -> Result<usize> {
        self.stats.record_logical_read();
        if let Some(&idx) = shard.map.get(&id) {
            shard.touch(idx);
            return Ok(idx);
        }
        self.stats.record_disk_read();
        let idx = self.acquire_frame(shard)?;
        let ps = self.pager.page_size();
        if shard.frames[idx].data.len() != ps {
            shard.frames[idx].data = vec![0u8; ps].into_boxed_slice();
        }
        if let Err(e) = self.pager.read_page(id, &mut shard.frames[idx].data) {
            // Hand the frame back so a failing pager cannot drain the pool.
            shard.free_frames.push(idx);
            return Err(e);
        }
        if self.verify_checksums.load(Ordering::Relaxed) {
            if let Err(e) = Self::verify_page(&shard.frames[idx].data, id) {
                shard.free_frames.push(idx);
                return Err(e);
            }
        }
        shard.frames[idx].dirty = false;
        shard.frames[idx].page = id;
        shard.map.insert(id, idx);
        shard.lru_push_front(idx);
        Ok(idx)
    }

    /// Finds a free frame in the shard, evicting its LRU page if full.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "eviction write-back of the victim frame happens under its shard guard by design")
    fn acquire_frame(&self, shard: &mut Shard) -> Result<usize> {
        if let Some(idx) = shard.free_frames.pop() {
            return Ok(idx);
        }
        if shard.frames.len() < self.shard_capacity {
            let ps = self.pager.page_size();
            shard.frames.push(Frame {
                data: vec![0u8; ps].into_boxed_slice(),
                dirty: false,
                prev: NIL,
                next: NIL,
                page: PageId(u32::MAX),
            });
            return Ok(shard.frames.len() - 1);
        }
        // Evict the shard's least recently used page.
        let victim = shard.lru_tail;
        debug_assert_ne!(victim, NIL, "shard capacity is at least 1");
        shard.lru_unlink(victim);
        let page = shard.frames[victim].page;
        if shard.frames[victim].dirty {
            // Write-back is safe without the write lock: the page became
            // dirty under it, after the dirty mark reached disk.
            self.stats.record_disk_write();
            // Borrow dance: take the buffer out while writing.
            let mut data = std::mem::take(&mut shard.frames[victim].data);
            Self::stamp_page(&mut data);
            let res = self.pager.write_page(page, &data);
            shard.frames[victim].data = data;
            res?;
        }
        self.stats.record_eviction();
        shard.map.remove(&page);
        Ok(victim)
    }

    /// Forces the on-disk dirty flag on before the first mutation of this
    /// "write epoch" — the write-ahead half of the clean-shutdown
    /// protocol. No data page can reach disk while the file still claims
    /// to be clean; `flush` clears the flag again as its final act.
    /// Caller holds the write lock.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "dirty-marking persists the meta page before first reuse; write ordering requires the guard")
    fn ensure_dirty_marked(&self, ws: &mut WriteState) -> Result<()> {
        if !ws.clean_on_disk {
            return Ok(());
        }
        let shard = &mut *self.shard(PageId::META);
        let idx = self.fetch(shard, PageId::META)?;
        shard.frames[idx].data[META_FLAGS] |= FLAG_DIRTY;
        self.stats.record_disk_write();
        let mut data = std::mem::take(&mut shard.frames[idx].data);
        Self::stamp_page(&mut data);
        let res = self.pager.write_page(PageId::META, &data);
        shard.frames[idx].data = data;
        res?;
        self.pager.sync()?;
        shard.frames[idx].dirty = false;
        ws.clean_on_disk = false;
        Ok(())
    }

    /// Runs `f` with read access to the payload of page `id`. The shard
    /// lock is held while `f` runs: `f` must not call back into the env.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "the read fixes the frame this guard pins; see module docs on the pool design")
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let usable = self.page_size();
        let shard = &mut *self.shard(id);
        let idx = self.fetch(shard, id)?;
        Ok(f(&shard.frames[idx].data[..usable]))
    }

    /// Runs `f` with write access to the payload of page `id`; the page
    /// is marked dirty (in the pool and, write-ahead, on disk).
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut ws = self.write_lock();
        self.ensure_dirty_marked(&mut ws)?;
        self.bump_data_version();
        self.page_mut_locked(id, f)
    }

    /// `with_page_mut` body, for callers already holding the write lock
    /// with the dirty mark ensured.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "the write path pins the frame under its shard guard by design")
    fn page_mut_locked<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let usable = self.page_size();
        let shard = &mut *self.shard(id);
        let idx = self.fetch(shard, id)?;
        shard.frames[idx].dirty = true;
        Ok(f(&mut shard.frames[idx].data[..usable]))
    }

    /// Copies the payload of page `id` out of the pool.
    pub fn read_page_copy(&self, id: PageId) -> Result<Vec<u8>> {
        self.with_page(id, |p| p.to_vec())
    }

    /// Writes back every dirty page (the pool keeps its contents), then
    /// marks the file clean. Two phases, each followed by a sync: data
    /// pages first, the clean meta page last, so a crash between the two
    /// still leaves the dirty flag set.
    ///
    /// Safe against concurrent readers: a page can only become dirty
    /// under the write lock (held here), so the dirty set can only
    /// shrink while flush runs. A reader evicting a still-dirty page
    /// writes it back *before* this flush reaches that shard — and hence
    /// before the phase-1 sync — never after.
    pub fn flush(&self) -> Result<()> {
        let mut ws = self.write_lock();
        self.flush_locked(&mut ws)
    }

    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "flush writes each dirty frame back under its shard guard; the documented pool design")
    fn flush_locked(&self, ws: &mut WriteState) -> Result<()> {
        let any_dirty = self.shards.iter().any(|s| {
            let shard = s.lock().unwrap_or_else(|e| e.into_inner());
            shard.frames.iter().any(|f| f.dirty && f.page.0 != u32::MAX)
        });
        if !any_dirty && ws.clean_on_disk {
            return Ok(()); // read-only session: nothing to write
        }
        // Phase 1: all dirty pages except the meta page.
        for s in &self.shards {
            let shard = &mut *s.lock().unwrap_or_else(|e| e.into_inner());
            for idx in 0..shard.frames.len() {
                let page = shard.frames[idx].page;
                if shard.frames[idx].dirty && page.0 != u32::MAX && page != PageId::META {
                    self.stats.record_disk_write();
                    let mut data = std::mem::take(&mut shard.frames[idx].data);
                    Self::stamp_page(&mut data);
                    let res = self.pager.write_page(page, &data);
                    shard.frames[idx].data = data;
                    res?;
                    shard.frames[idx].dirty = false;
                }
            }
        }
        self.pager.sync()?;
        // Phase 2: the meta page, with the dirty flag cleared.
        {
            let shard = &mut *self.shard(PageId::META);
            let idx = self.fetch(shard, PageId::META)?;
            shard.frames[idx].data[META_FLAGS] &= !FLAG_DIRTY;
            self.stats.record_disk_write();
            let mut data = std::mem::take(&mut shard.frames[idx].data);
            Self::stamp_page(&mut data);
            let res = self.pager.write_page(PageId::META, &data);
            shard.frames[idx].data = data;
            res?;
            shard.frames[idx].dirty = false;
        }
        self.pager.sync()?;
        ws.clean_on_disk = true;
        Ok(())
    }

    /// Flushes and then drops every cached page — the *cold cache* state of
    /// the paper's experiments: the next access to any page is a disk read.
    pub fn clear_cache(&self) -> Result<()> {
        let mut ws = self.write_lock();
        self.flush_locked(&mut ws)?;
        for s in &self.shards {
            let shard = &mut *s.lock().unwrap_or_else(|e| e.into_inner());
            shard.map.clear();
            shard.frames.clear();
            shard.free_frames.clear();
            shard.lru_head = NIL;
            shard.lru_tail = NIL;
        }
        Ok(())
    }

    /// Number of pages currently cached (across all shards).
    pub fn cached_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// Number of pool frames currently allocated (across all shards);
    /// bounded by the pool capacity even under failing reads.
    pub fn resident_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).frames.len())
            .sum()
    }

    // ---- allocation ----

    /// Allocates a page: pops the free list or grows the file.
    // xk-analyze: allow(panic_path, reason = "freelist head bytes are a fixed 4-byte header slice")
    // xk-analyze: allow(io_under_lock, reason = "frame acquisition for the fresh page evicts under the shard guard by design")
    pub fn allocate_page(&self) -> Result<PageId> {
        let mut ws = self.write_lock();
        self.ensure_dirty_marked(&mut ws)?;
        self.bump_data_version();
        let head = self.freelist_head()?;
        if let Some(free) = head {
            let next = self.with_page(free, |p| {
                u32::from_le_bytes(p[..4].try_into().expect("4-byte freelist link"))
            })?;
            self.set_freelist_head(PageId::decode_opt(next))?;
            // Zero the page for the new user.
            self.page_mut_locked(free, |p| p.fill(0))?;
            return Ok(free);
        }
        let id = self.pager.grow()?;
        // Materialize a zeroed frame for the new page so the first access
        // does not count as a disk read (the page has never been written).
        let shard = &mut *self.shard(id);
        let idx = self.acquire_frame(shard)?;
        let ps = self.pager.page_size();
        if shard.frames[idx].data.len() != ps {
            shard.frames[idx].data = vec![0u8; ps].into_boxed_slice();
        } else {
            shard.frames[idx].data.fill(0);
        }
        shard.frames[idx].dirty = true;
        shard.frames[idx].page = id;
        shard.map.insert(id, idx);
        shard.lru_push_front(idx);
        Ok(id)
    }

    /// Returns a page to the free list.
    pub fn free_page(&self, id: PageId) -> Result<()> {
        assert_ne!(id, PageId::META, "cannot free the meta page");
        let mut ws = self.write_lock();
        self.ensure_dirty_marked(&mut ws)?;
        self.bump_data_version();
        let head = self.freelist_head()?;
        self.page_mut_locked(id, |p| {
            p[..4].copy_from_slice(&PageId::encode_opt(head).to_le_bytes());
        })?;
        self.set_freelist_head(Some(id))
    }

    /// Caller holds the write lock with the dirty mark ensured.
    // xk-analyze: allow(panic_path, reason = "meta-page header slices are fixed-width")
    fn freelist_head(&self) -> Result<Option<PageId>> {
        self.with_page(PageId::META, |p| {
            PageId::decode_opt(u32::from_le_bytes(
                p[META_FREELIST..META_FREELIST + 4]
                    .try_into()
                    .expect("4-byte freelist head in meta"),
            ))
        })
    }

    /// Caller holds the write lock with the dirty mark ensured.
    fn set_freelist_head(&self, head: Option<PageId>) -> Result<()> {
        self.page_mut_locked(PageId::META, |p| {
            p[META_FREELIST..META_FREELIST + 4]
                .copy_from_slice(&PageId::encode_opt(head).to_le_bytes());
        })
    }

    // ---- named roots & user blob ----

    /// Reads named root slot `slot` (for B+tree roots and list directories).
    // xk-analyze: allow(panic_path, reason = "root-slot offsets are bounded by ROOT_SLOTS")
    pub fn root_slot(&self, slot: usize) -> Result<Option<PageId>> {
        assert!(slot < ROOT_SLOTS);
        self.with_page(PageId::META, |p| {
            let off = META_ROOTS + slot * 4;
            PageId::decode_opt(u32::from_le_bytes(
                p[off..off + 4].try_into().expect("4-byte root slot in meta"),
            ))
        })
    }

    /// Writes named root slot `slot`.
    // xk-analyze: allow(panic_path, reason = "root-slot offsets are bounded by ROOT_SLOTS")
    pub fn set_root_slot(&self, slot: usize, page: Option<PageId>) -> Result<()> {
        assert!(slot < ROOT_SLOTS);
        let mut ws = self.write_lock();
        self.ensure_dirty_marked(&mut ws)?;
        self.bump_data_version();
        self.page_mut_locked(PageId::META, |p| {
            let off = META_ROOTS + slot * 4;
            p[off..off + 4].copy_from_slice(&PageId::encode_opt(page).to_le_bytes());
        })
    }

    /// Maximum size of the user metadata blob for this page size.
    pub fn user_blob_capacity(&self) -> usize {
        self.page_size() - META_BLOB
    }

    /// Stores an application metadata blob in the meta page (e.g. the
    /// serialized level table). Must fit in [`Self::user_blob_capacity`].
    pub fn set_user_blob(&self, blob: &[u8]) -> Result<()> {
        if blob.len() > self.user_blob_capacity() {
            return Err(StorageError::EntryTooLarge {
                entry_bytes: blob.len(),
                max_bytes: self.user_blob_capacity(),
            });
        }
        let mut ws = self.write_lock();
        self.ensure_dirty_marked(&mut ws)?;
        self.bump_data_version();
        self.page_mut_locked(PageId::META, |p| {
            p[META_BLOB_LEN..META_BLOB_LEN + 4]
                .copy_from_slice(&(blob.len() as u32).to_le_bytes());
            p[META_BLOB..META_BLOB + blob.len()].copy_from_slice(blob);
        })
    }

    /// Reads the application metadata blob.
    pub fn user_blob(&self) -> Result<Vec<u8>> {
        let capacity = self.user_blob_capacity();
        self.with_page(PageId::META, |p| {
            let len = u32::from_le_bytes(
                p[META_BLOB_LEN..META_BLOB_LEN + 4]
                    .try_into()
                    .expect("4-byte blob length in meta"),
            ) as usize;
            if len > capacity {
                return Err(StorageError::Corrupt(format!(
                    "meta blob length {len} exceeds capacity {capacity}"
                )));
            }
            Ok(p[META_BLOB..META_BLOB + len].to_vec())
        })?
    }
}

impl Drop for StorageEnv {
    fn drop(&mut self) {
        // xk-analyze: allow(swallowed_result, reason = "Drop cannot report; explicit flush() is the checked path and tests assert it")
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(pool_pages: usize) -> StorageEnv {
        StorageEnv::in_memory(EnvOptions { page_size: 256, pool_pages })
    }

    #[test]
    fn page_size_excludes_trailer() {
        let env = mem(16);
        assert_eq!(env.page_size(), 256 - PAGE_TRAILER);
        assert_eq!(env.physical_page_size(), 256);
    }

    #[test]
    fn env_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StorageEnv>();
        assert_send_sync::<std::sync::Arc<StorageEnv>>();
    }

    #[test]
    fn shard_count_scales_with_pool() {
        assert_eq!(mem(8).shard_count(), 1, "tiny pool: exact single LRU");
        assert_eq!(mem(16).shard_count(), 2);
        assert_eq!(mem(64).shard_count(), 8);
        assert_eq!(mem(1024).shard_count(), 8, "capped at MAX_SHARDS");
    }

    #[test]
    fn allocate_write_read() {
        let env = mem(16);
        let a = env.allocate_page().unwrap();
        let b = env.allocate_page().unwrap();
        assert_ne!(a, b);
        env.with_page_mut(a, |p| p[10] = 42).unwrap();
        env.with_page_mut(b, |p| p[10] = 43).unwrap();
        assert_eq!(env.with_page(a, |p| p[10]).unwrap(), 42);
        assert_eq!(env.with_page(b, |p| p[10]).unwrap(), 43);
    }

    #[test]
    fn free_list_reuses_pages() {
        let env = mem(16);
        let a = env.allocate_page().unwrap();
        let before = env.page_count();
        env.free_page(a).unwrap();
        let b = env.allocate_page().unwrap();
        assert_eq!(a, b, "freed page must be reused");
        assert_eq!(env.page_count(), before);
        // Reused page is zeroed.
        assert_eq!(env.with_page(b, |p| p[0]).unwrap(), 0);
    }

    #[test]
    fn eviction_and_stats() {
        let env = mem(8); // tiny pool
        let pages: Vec<_> = (0..20).map(|_| env.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            env.with_page_mut(p, |d| d[0] = i as u8).unwrap();
        }
        // All data survives eviction.
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(env.with_page(p, |d| d[0]).unwrap(), i as u8);
        }
        let s = env.stats();
        assert!(s.evictions > 0, "pool of 8 with 20 pages must evict");
        assert!(s.disk_reads > 0);
    }

    #[test]
    fn clear_cache_forces_disk_reads() {
        let env = mem(64);
        let p = env.allocate_page().unwrap();
        env.with_page_mut(p, |d| d[0] = 7).unwrap();
        env.clear_cache().unwrap();
        env.reset_stats();
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 7);
        assert_eq!(env.stats().disk_reads, 1, "cold cache: first access reads disk");
        env.reset_stats();
        env.with_page(p, |d| d[0]).unwrap();
        assert_eq!(env.stats().disk_reads, 0, "hot cache: second access hits pool");
    }

    #[test]
    fn data_version_bumps_on_every_mutation() {
        let env = mem(16);
        let v0 = env.data_version();
        let p = env.allocate_page().unwrap();
        assert!(env.data_version() > v0, "allocate_page bumps");
        let v1 = env.data_version();
        env.with_page_mut(p, |d| d[0] = 1).unwrap();
        assert!(env.data_version() > v1, "with_page_mut bumps");
        let v2 = env.data_version();
        env.set_root_slot(0, Some(p)).unwrap();
        assert!(env.data_version() > v2, "set_root_slot bumps");
        let v3 = env.data_version();
        env.set_user_blob(b"x").unwrap();
        assert!(env.data_version() > v3, "set_user_blob bumps");
        let v4 = env.data_version();
        env.free_page(p).unwrap();
        assert!(env.data_version() > v4, "free_page bumps");
        // Reads do not bump.
        let v5 = env.data_version();
        env.with_page(PageId::META, |_| ()).unwrap();
        env.root_slot(0).unwrap();
        env.user_blob().unwrap();
        assert_eq!(env.data_version(), v5, "reads leave the version alone");
    }

    #[test]
    fn root_slots_persist() {
        let env = mem(16);
        assert_eq!(env.root_slot(3).unwrap(), None);
        env.set_root_slot(3, Some(PageId(9))).unwrap();
        assert_eq!(env.root_slot(3).unwrap(), Some(PageId(9)));
        env.set_root_slot(3, None).unwrap();
        assert_eq!(env.root_slot(3).unwrap(), None);
    }

    #[test]
    fn user_blob_roundtrip() {
        let env = mem(16);
        assert_eq!(env.user_blob().unwrap(), Vec::<u8>::new());
        env.set_user_blob(b"level-table-v1").unwrap();
        assert_eq!(env.user_blob().unwrap(), b"level-table-v1");
        let too_big = vec![0u8; env.user_blob_capacity() + 1];
        assert!(env.set_user_blob(&too_big).is_err());
    }

    #[test]
    fn file_env_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("xk-env-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("env.db");
        let opts = EnvOptions { page_size: 512, pool_pages: 16 };
        let page;
        {
            let env = StorageEnv::create(&path, opts.clone()).unwrap();
            page = env.allocate_page().unwrap();
            env.with_page_mut(page, |p| p[5] = 99).unwrap();
            env.set_root_slot(0, Some(page)).unwrap();
            env.set_user_blob(b"hello").unwrap();
            env.flush().unwrap();
        }
        {
            let env = StorageEnv::open(&path, opts).unwrap();
            assert_eq!(env.root_slot(0).unwrap(), Some(page));
            assert_eq!(env.user_blob().unwrap(), b"hello");
            assert_eq!(env.with_page(page, |p| p[5]).unwrap(), 99);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_auto_detects_page_size() {
        let dir = std::env::temp_dir().join(format!("xk-env2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("env.db");
        {
            let env =
                StorageEnv::create(&path, EnvOptions { page_size: 512, pool_pages: 16 }).unwrap();
            let p = env.allocate_page().unwrap();
            env.with_page_mut(p, |d| d[500] = 1).unwrap(); // needs the real 512-byte payload
            env.flush().unwrap();
        }
        // Misconfigured options: the header wins.
        let env =
            StorageEnv::open(&path, EnvOptions { page_size: 4096, pool_pages: 16 }).unwrap();
        assert_eq!(env.physical_page_size(), 512);
        assert_eq!(env.with_page(PageId(1), |d| d[500]).unwrap(), 1);
        drop(env);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_implausible_header_page_size() {
        let dir = std::env::temp_dir().join(format!("xk-env3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("env.db");
        {
            let env =
                StorageEnv::create(&path, EnvOptions { page_size: 512, pool_pages: 16 }).unwrap();
            env.flush().unwrap();
        }
        // Corrupt the stored page size to a non-power-of-two.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&777u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match StorageEnv::open(&path, EnvOptions { page_size: 512, pool_pages: 16 }).err() {
            Some(StorageError::Corrupt(msg)) => {
                assert!(msg.contains("777"), "mentions stored size: {msg}");
                assert!(msg.contains("512"), "mentions configured size: {msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_dirty_file() {
        let dir = std::env::temp_dir().join(format!("xk-env4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("env.db");
        {
            let env =
                StorageEnv::create(&path, EnvOptions { page_size: 256, pool_pages: 16 }).unwrap();
            let p = env.allocate_page().unwrap();
            env.with_page_mut(p, |d| d[0] = 1).unwrap();
            env.flush().unwrap();
            // Simulate a crash mid-write-epoch: the mutation forces the
            // dirty flag to disk; forgetting the env skips the clean
            // flush that Drop would run.
            env.with_page_mut(p, |d| d[1] = 2).unwrap();
            std::mem::forget(env);
        }
        match StorageEnv::open(&path, EnvOptions { page_size: 256, pool_pages: 16 }).err() {
            Some(StorageError::DirtyShutdown) => {}
            other => panic!("expected DirtyShutdown, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_catches_on_disk_bit_flip() {
        let dir = std::env::temp_dir().join(format!("xk-env5-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("env.db");
        let (page, opts) = {
            let opts = EnvOptions { page_size: 256, pool_pages: 16 };
            let env = StorageEnv::create(&path, opts.clone()).unwrap();
            let p = env.allocate_page().unwrap();
            env.with_page_mut(p, |d| d.fill(0x5A)).unwrap();
            env.flush().unwrap();
            (p, opts)
        };
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = page.0 as usize * 256 + 100;
        bytes[offset] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let env = StorageEnv::open(&path, opts).unwrap(); // meta page intact
        match env.with_page(page, |_| ()) {
            Err(StorageError::ChecksumMismatch { page: p, stored, computed }) => {
                assert_eq!(p, page.0);
                assert_ne!(stored, computed);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // Verification off: the flip sails through (bench mode).
        env.set_verify_checksums(false);
        env.with_page(page, |_| ()).unwrap();
        drop(env);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_failure_does_not_leak_pool_frames() {
        use crate::fault::{FaultConfig, FaultPager};
        let inner = Box::new(MemPager::new(256));
        // Read op 0 is the meta fetch during create; fail everything after.
        let fault =
            FaultPager::new(inner, FaultConfig { fail_read_at: Some(1), ..FaultConfig::none() });
        let env = StorageEnv::create_with_pager(Box::new(fault), 8).unwrap();
        // Meta is cached from create; force misses on a page that will
        // always fail to read. Every attempt must recycle its frame.
        for _ in 0..100 {
            assert!(env.with_page(PageId(3), |_| ()).is_err());
        }
        assert!(env.resident_frames() <= 8, "failed reads must not grow the pool");
    }

    #[test]
    fn lru_keeps_hot_pages() {
        let env = mem(8);
        let hot = env.allocate_page().unwrap();
        env.with_page_mut(hot, |p| p[0] = 1).unwrap();
        // Touch `hot` between every new allocation; it must never be evicted.
        for _ in 0..30 {
            let p = env.allocate_page().unwrap();
            env.with_page(p, |_| ()).unwrap();
            env.with_page(hot, |_| ()).unwrap();
        }
        let before = env.stats().disk_reads;
        env.with_page(hot, |_| ()).unwrap();
        assert_eq!(env.stats().disk_reads, before, "hot page stays cached");
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        let env = mem(16); // 2 shards
        let pages: Vec<PageId> = (0..12).map(|_| env.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            env.with_page_mut(p, |d| d.fill(i as u8 + 1)).unwrap();
        }
        env.clear_cache().unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let env = &env;
                let pages = &pages;
                s.spawn(move || {
                    for round in 0..50 {
                        let p = pages[(t + round * 7) % pages.len()];
                        let fill = (pages.iter().position(|&q| q == p).unwrap() + 1) as u8;
                        env.with_page(p, |d| {
                            assert!(d.iter().all(|&b| b == fill), "torn read of {p:?}");
                        })
                        .unwrap();
                    }
                });
            }
        });
        // Counters add up: every logical read is a hit or a miss.
        let s = env.stats();
        assert!(s.disk_reads <= s.logical_reads);
    }

    #[test]
    fn concurrent_reads_during_mutation_keep_invariants() {
        let env = std::sync::Arc::new(mem(32));
        let stable: Vec<PageId> = (0..8).map(|_| env.allocate_page().unwrap()).collect();
        for (i, &p) in stable.iter().enumerate() {
            env.with_page_mut(p, |d| d.fill(0x40 + i as u8)).unwrap();
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..3 {
                let env = env.clone();
                let stable = stable.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut round = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let i = (t + round) % stable.len();
                        env.with_page(stable[i], |d| {
                            assert!(d.iter().all(|&b| b == 0x40 + i as u8));
                        })
                        .unwrap();
                        round += 1;
                    }
                });
            }
            // Writer thread: allocate, dirty, flush, clear — the full
            // mutation surface — while readers hammer stable pages.
            for _ in 0..20 {
                let p = env.allocate_page().unwrap();
                env.with_page_mut(p, |d| d.fill(0xEE)).unwrap();
                env.flush().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}

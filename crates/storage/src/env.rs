//! The storage environment: a pager fronted by a sharded LRU buffer pool.
//!
//! [`StorageEnv`] is the single entry point the index structures use. It
//! provides page access through closures (`with_page` / `with_page_mut`),
//! page allocation with a free list, named root slots in the meta page, a
//! small user-metadata blob, and cache control for the hot/cold-cache
//! experiments (`clear_cache` drops every cached page so the next access of
//! each page is a real disk read).
//!
//! # Concurrency model
//!
//! The env is `Send + Sync` and all operations take `&self`; it is shared
//! across query threads behind an `Arc`. Three mechanisms cooperate:
//!
//! * **Sharded buffer pool.** Frames live in N shards, page `p` belonging
//!   to shard `p % N`, each shard a `Mutex` around its own frame table,
//!   page map, and intrusive LRU list. Readers of different pages contend
//!   only when the pages share a shard; a page's bytes are only ever
//!   touched under its shard lock, so closures passed to `with_page` see
//!   a stable snapshot. N is derived from the pool size
//!   (`clamp(pool_pages / 8, 1, 8)`) so tiny test pools keep exact
//!   single-LRU eviction semantics while production-sized pools spread
//!   across 8 shards.
//! * **Atomic I/O stats.** Counters are relaxed atomics
//!   ([`crate::AtomicIoStats`]); `stats()` returns a snapshot.
//! * **A single write lock.** Every mutating operation (`with_page_mut`,
//!   `allocate_page`, `free_page`, root-slot/blob writes, `flush`,
//!   `clear_cache`) serializes on one mutex that also guards the
//!   dirty-shutdown flag state. Lock order is strictly *write lock →
//!   one shard lock*; readers take only a shard lock. The read path can
//!   still write to disk — evicting a dirty page writes it back — but a
//!   page can only *become* dirty under the write lock, after the
//!   write-ahead dirty mark below is on disk, so eviction write-backs
//!   never race the clean-shutdown protocol (see `flush`).
//!
//! # On-disk format v2 (`XKSTORE2`)
//!
//! Every physical page ends in an 8-byte trailer: a little-endian CRC-32
//! of the payload plus four reserved zero bytes. Callers never see the
//! trailer — [`StorageEnv::page_size`] reports the *usable* payload size
//! and the page closures receive only the payload slice. Checksums are
//! stamped on every write-back and verified on every buffer-pool miss, so
//! a torn or bit-flipped page surfaces as
//! [`StorageError::ChecksumMismatch`] naming the page instead of being
//! garbage-decoded. A page whose payload and trailer are entirely zero is
//! exempt: that is the state of a freshly grown page that was never
//! written (a real CRC-32 of a zero payload is nonzero, so the exemption
//! cannot mask a corrupted written page).
//!
//! The meta page (page 0) additionally carries a format version and a
//! dirty flag. The flag is forced to disk *before* the first data-page
//! mutation can reach the file and cleared as the last step of
//! [`StorageEnv::flush`]; [`StorageEnv::open`] refuses files whose flag
//! is still set with [`StorageError::DirtyShutdown`], which is how a
//! crashed writer is detected on the next open.

use crate::checksum::{stamp_trailer, verify_trailer};
use crate::error::{Result, StorageError};
use crate::pager::{FilePager, MemPager, PageId, Pager};
use crate::stats::{AtomicIoStats, IoStats};
use crate::wal::Wal;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

const MAGIC: &[u8; 8] = b"XKSTORE2";
const MAGIC_V1: &[u8; 8] = b"XKSTORE1";
/// On-disk format version stored in the meta page.
pub const FORMAT_VERSION: u16 = 2;
/// Bytes reserved at the end of every physical page for the CRC trailer.
pub const PAGE_TRAILER: usize = 8;

// Meta-page payload layout.
const META_PAGE_SIZE: usize = 8; // u32: physical page size
const META_VERSION: usize = 12; // u16: FORMAT_VERSION
const META_FLAGS: usize = 14; // u8: FLAG_* bits ([15] reserved)
const META_FREELIST: usize = 16;
const META_ROOTS: usize = 20;
/// Number of named B+tree root slots in the meta page.
pub const ROOT_SLOTS: usize = 8;
const META_BLOB_LEN: usize = META_ROOTS + 4 * ROOT_SLOTS;
const META_BLOB: usize = META_BLOB_LEN + 4;

const FLAG_DIRTY: u8 = 1;

/// Upper bound on buffer-pool shards; the actual count also never
/// exceeds `pool_pages / 8` so small pools degrade to one exact LRU.
const MAX_SHARDS: usize = 8;

/// Configuration for creating or opening a [`StorageEnv`].
#[derive(Debug, Clone)]
pub struct EnvOptions {
    /// Physical page size in bytes (power of two, >= 128). Default 4096.
    /// Used when *creating* a file; `open` reads the size from the meta
    /// header instead.
    pub page_size: usize,
    /// Buffer pool capacity in pages. Default 1024 (4 MiB at 4 KiB pages).
    /// The pool is split into `clamp(pool_pages / 8, 1, 8)` LRU shards.
    pub pool_pages: usize,
}

impl Default for EnvOptions {
    fn default() -> Self {
        EnvOptions { page_size: 4096, pool_pages: 1024 }
    }
}

struct Frame {
    data: Box<[u8]>,
    dirty: bool,
    /// False while the frame holds data whose WAL record is not yet
    /// durable: such a frame must not reach the database file (eviction
    /// skips it, `flush` phase 1 skips it, `clear_cache` retains it).
    /// Always true on a WAL-less env.
    logged: bool,
    /// Which un-logging event last cleared `logged` (a per-transaction
    /// stamp). The post-sync drain only re-logs a frame whose stamp still
    /// matches, so a commit's durability cannot accidentally bless bytes
    /// a *later* transaction wrote into the same frame.
    log_stamp: u64,
    /// Intrusive LRU links: indices into `Shard::frames`.
    prev: usize,
    next: usize,
    page: PageId,
}

const NIL: usize = usize::MAX;

/// Locks a mutex, ignoring poisoning (the env's invariants are restored
/// by the error paths, not by panics mid-critical-section).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One buffer-pool shard: an independent LRU over its slice of pages.
struct Shard {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    free_frames: Vec<usize>,
    lru_head: usize, // most recently used
    lru_tail: usize, // least recently used
}

impl Shard {
    fn new() -> Shard {
        Shard {
            frames: Vec::new(),
            map: HashMap::new(),
            free_frames: Vec::new(),
            lru_head: NIL,
            lru_tail: NIL,
        }
    }

    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    fn lru_unlink(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.lru_head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.lru_tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    fn lru_push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.lru_head;
        if self.lru_head != NIL {
            self.frames[self.lru_head].prev = idx;
        }
        self.lru_head = idx;
        if self.lru_tail == NIL {
            self.lru_tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.lru_head != idx {
            self.lru_unlink(idx);
            self.lru_push_front(idx);
        }
    }
}

/// Mutation-side state guarded by the env's write lock.
struct WriteState {
    /// True while the on-disk meta page has a *clear* dirty flag, i.e.
    /// the file claims to be clean. Any mutation must first push a dirty
    /// meta page to disk (see `ensure_dirty_marked`).
    clean_on_disk: bool,
    /// The in-flight transaction, if any (see [`StorageEnv::begin_txn`]).
    txn: Option<TxnState>,
}

/// Per-page rollback record captured at a transaction's first touch.
struct UndoEntry {
    /// Full physical pre-image — shared with the snapshot version table.
    image: Arc<[u8]>,
    /// The frame's `logged`/`log_stamp` before this transaction touched
    /// it, restored on abort (the prior state may itself be a
    /// committed-but-unsynced transaction's).
    prior_logged: bool,
    prior_stamp: u64,
}

/// An open transaction: undo images keyed by page, first-touch order,
/// and the pages grown from the file tail (freed on rollback only by
/// abandonment — see `abort_txn`).
struct TxnState {
    /// The committed epoch when the transaction began. Pre-images are
    /// filed in the snapshot table under this tag ("content as of the
    /// end of epoch `tag`").
    tag: u64,
    /// Unique stamp marking the frames this transaction un-logged.
    stamp: u64,
    undo: HashMap<PageId, UndoEntry>,
    order: Vec<PageId>,
    grown: Vec<PageId>,
}

/// Snapshot-read state: per-page pre-image versions and reader pins.
///
/// `versions[p]` holds `(tag, image)` pairs in ascending tag order, where
/// `image` is the content of `p` as of the end of epoch `tag`. A reader
/// pinned at epoch `P` is served the image with the *smallest tag ≥ P*
/// (content only changes at epoch boundaries, so that image equals the
/// page's content at every epoch from its previous change through `tag`);
/// absent such a version, the live frame is current enough. Versions are
/// pruned at commit: once no pin is ≤ a tag, no reader can ever need it.
/// `(tag, image)` pairs in ascending tag order (see [`SnapTable`]).
type PageVersions = Vec<(u64, Arc<[u8]>)>;

struct SnapTable {
    versions: HashMap<PageId, PageVersions>,
    /// Pinned epoch → number of pins. The smallest key bounds pruning.
    pins: BTreeMap<u64, usize>,
    /// Tag under which the in-flight transaction files pre-images (0 =
    /// no transaction); never pruned.
    active_tag: u64,
}

/// A committed transaction whose WAL records are not yet fsynced; the
/// post-sync drain flips its frames back to `logged`.
struct UnsyncedTxn {
    lsn: u64,
    pages: Vec<(PageId, u64)>,
}

/// The result of a successful [`StorageEnv::commit_txn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnCommit {
    /// The epoch this commit established; readers pinned at it (or later)
    /// observe the transaction's writes.
    pub epoch: u64,
    /// LSN of the commit record, for [`StorageEnv::wait_wal_durable`].
    /// Zero on a WAL-less env (nothing to wait for).
    pub lsn: u64,
}

thread_local! {
    /// The epoch pinned by a [`ReadPin`] on this thread (0 = unpinned).
    /// Thread-local so the read path needs no per-call handle threading:
    /// every `with_page` under the pin transparently resolves snapshot
    /// versions.
    static PINNED: Cell<u64> = const { Cell::new(0) };
}

/// An RAII snapshot pin: while alive, every page read *on this thread*
/// observes the database as of the pinned epoch, no matter what commits
/// concurrently. Obtained from [`StorageEnv::pin_snapshot`].
pub struct ReadPin<'a> {
    env: &'a StorageEnv,
    tag: u64,
    prev: u64,
}

impl ReadPin<'_> {
    /// The epoch this pin holds stable.
    pub fn epoch(&self) -> u64 {
        self.tag
    }
}

impl Drop for ReadPin<'_> {
    fn drop(&mut self) {
        PINNED.with(|c| c.set(self.prev));
        self.env.unpin(self.tag);
    }
}

/// A pager fronted by a sharded LRU buffer pool with I/O accounting.
/// `Send + Sync`: share it across query threads behind an `Arc`.
pub struct StorageEnv {
    pager: Box<dyn Pager>,
    shards: Vec<Mutex<Shard>>,
    /// Frame capacity *per shard*.
    shard_capacity: usize,
    stats: AtomicIoStats,
    /// Verify page checksums on buffer-pool misses (on by default; the
    /// bench harness turns it off to measure the overhead).
    verify_checksums: AtomicBool,
    /// Serializes every mutating operation; see the module docs. A
    /// writer can hold it across WAL appends and page I/O, so it is
    /// declared contended: the reactor thread must never block on it.
    // xk-analyze: protocol(reactor_blocking, contended)
    write_state: Mutex<WriteState>,
    /// Monotone counter bumped by every mutating operation. Anchored
    /// B+tree cursors snapshot it when they pin a root-to-leaf path and
    /// treat any later bump as an invalidation signal (conservative: any
    /// write anywhere in the env discards pinned paths).
    data_version: AtomicU64,
    /// Last committed epoch (starts at 1). Bumped by `commit_txn` inside
    /// the snapshot-table critical section, so pin registration and
    /// version pruning are atomic with respect to it.
    committed_epoch: AtomicU64,
    /// Snapshot versions and reader pins. Lock order: `write_state` →
    /// shard → `snap`; both the read and write paths take a shard lock
    /// before this one, and nothing is acquired while holding it.
    snap: Mutex<SnapTable>,
    /// Committed transactions whose WAL records await an fsync.
    unsynced: Mutex<Vec<UnsyncedTxn>>,
    /// Source of per-transaction `log_stamp`s.
    txn_stamps: AtomicU64,
    /// The write-ahead log, if this env is durable (see `attach_wal`).
    wal: Option<Wal>,
}

impl StorageEnv {
    /// Creates a new storage file at `path`.
    pub fn create(path: impl AsRef<Path>, options: EnvOptions) -> Result<StorageEnv> {
        let pager = FilePager::create(path.as_ref(), options.page_size)?;
        Self::create_with_pager(Box::new(pager), options.pool_pages)
    }

    /// Opens an existing storage file at `path`. The page size is read
    /// from the meta header, not from `options`; a header whose size is
    /// implausible or inconsistent with the file length is rejected as
    /// [`StorageError::Corrupt`], and a file whose dirty flag is set is
    /// rejected as [`StorageError::DirtyShutdown`].
    pub fn open(path: impl AsRef<Path>, options: EnvOptions) -> Result<StorageEnv> {
        let path = path.as_ref();
        let page_size = Self::detect_page_size(path, options.page_size)?;
        let pager = FilePager::open(path, page_size)?;
        Self::open_with_pager(Box::new(pager), options.pool_pages)
    }

    /// Creates an ephemeral in-memory environment (tests, transient work).
    pub fn in_memory(options: EnvOptions) -> StorageEnv {
        let pager = MemPager::new(options.page_size);
        Self::create_with_pager(Box::new(pager), options.pool_pages)
            .expect("in-memory init cannot fail")
    }

    /// Initializes a fresh environment over an arbitrary pager (e.g. a
    /// [`crate::FaultPager`] for crash-simulation tests). The pager must
    /// be empty or about to be overwritten.
    pub fn create_with_pager(pager: Box<dyn Pager>, pool_pages: usize) -> Result<StorageEnv> {
        let env = Self::with_pager(pager, pool_pages);
        env.init_meta()?;
        Ok(env)
    }

    /// Opens an environment over an arbitrary pager holding an existing
    /// `XKSTORE2` image. The pager's page size must match the file's.
    pub fn open_with_pager(pager: Box<dyn Pager>, pool_pages: usize) -> Result<StorageEnv> {
        let env = Self::with_pager(pager, pool_pages);
        env.check_meta()?;
        env.write_lock().clean_on_disk = true;
        Ok(env)
    }

    fn with_pager(pager: Box<dyn Pager>, pool_pages: usize) -> StorageEnv {
        let capacity = pool_pages.max(8);
        let nshards = (capacity / 8).clamp(1, MAX_SHARDS);
        StorageEnv {
            pager,
            shards: (0..nshards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_capacity: capacity.div_ceil(nshards),
            stats: AtomicIoStats::default(),
            verify_checksums: AtomicBool::new(true),
            write_state: Mutex::new(WriteState { clean_on_disk: false, txn: None }),
            data_version: AtomicU64::new(0),
            committed_epoch: AtomicU64::new(1),
            snap: Mutex::new(SnapTable {
                versions: HashMap::new(),
                pins: BTreeMap::new(),
                active_tag: 0,
            }),
            unsynced: Mutex::new(Vec::new()),
            txn_stamps: AtomicU64::new(0),
            wal: None,
        }
    }

    /// Reads the page size out of the meta header so `open` does not have
    /// to trust `EnvOptions::page_size`. `configured` is only quoted in
    /// error messages.
    // xk-analyze: allow(panic_path, reason = "fixed-width header slices; ps is validated non-zero before the modulo")
    fn detect_page_size(path: &Path, configured: usize) -> Result<usize> {
        use std::io::Read;
        let mut file = std::fs::File::open(path)?;
        let mut header = [0u8; 16];
        file.read_exact(&mut header).map_err(|_| {
            StorageError::Corrupt("file too short to hold a meta-page header".into())
        })?;
        if &header[..8] == MAGIC_V1 {
            return Err(StorageError::Corrupt(
                "file uses the retired XKSTORE1 format (no checksums); rebuild the index".into(),
            ));
        }
        if &header[..8] != MAGIC {
            return Err(StorageError::Corrupt("bad magic".into()));
        }
        let ps = u32::from_le_bytes(
            header[META_PAGE_SIZE..META_PAGE_SIZE + 4]
                .try_into()
                .expect("4-byte slice of a 16-byte header"),
        ) as usize;
        if !(128..=1 << 24).contains(&ps) || !ps.is_power_of_two() {
            return Err(StorageError::Corrupt(format!(
                "implausible page size {ps} in meta header (configured page size: {configured})"
            )));
        }
        let len = file.metadata()?.len();
        if len % ps as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of the header page size {ps} \
                 (configured page size: {configured})"
            )));
        }
        Ok(ps)
    }

    // xk-analyze: allow(panic_path, reason = "meta-page field offsets are compile-time constants well under MIN_PAGE_SIZE, which open/create enforce")
    fn init_meta(&self) -> Result<()> {
        let ps = self.pager.page_size();
        self.with_page_mut(PageId::META, |page| {
            page[..8].copy_from_slice(MAGIC);
            page[META_PAGE_SIZE..META_PAGE_SIZE + 4]
                .copy_from_slice(&(ps as u32).to_le_bytes());
            page[META_VERSION..META_VERSION + 2]
                .copy_from_slice(&FORMAT_VERSION.to_le_bytes());
            // Born dirty: the file is not consistent until the first flush.
            page[META_FLAGS] = FLAG_DIRTY;
            page[META_FREELIST..META_FREELIST + 4]
                .copy_from_slice(&PageId::NONE_RAW.to_le_bytes());
            for slot in 0..ROOT_SLOTS {
                let off = META_ROOTS + slot * 4;
                page[off..off + 4].copy_from_slice(&PageId::NONE_RAW.to_le_bytes());
            }
            page[META_BLOB_LEN..META_BLOB_LEN + 4].copy_from_slice(&0u32.to_le_bytes());
        })
    }

    // xk-analyze: allow(panic_path, reason = "fixed-width slices of the meta payload cannot fail try_into")
    fn check_meta(&self) -> Result<()> {
        let expected = self.pager.page_size() as u32;
        self.with_page(PageId::META, |page| {
            if &page[..8] == MAGIC_V1 {
                return Err(StorageError::Corrupt(
                    "file uses the retired XKSTORE1 format (no checksums); rebuild the index"
                        .into(),
                ));
            }
            if &page[..8] != MAGIC {
                return Err(StorageError::Corrupt("bad magic".into()));
            }
            let ps = u32::from_le_bytes(
                page[META_PAGE_SIZE..META_PAGE_SIZE + 4]
                    .try_into()
                    .expect("4-byte slice of the meta payload"),
            );
            if ps != expected {
                return Err(StorageError::Corrupt(format!(
                    "file page size {ps} does not match pager page size {expected}"
                )));
            }
            let version = u16::from_le_bytes(
                page[META_VERSION..META_VERSION + 2]
                    .try_into()
                    .expect("2-byte slice of the meta payload"),
            );
            if version != FORMAT_VERSION {
                return Err(StorageError::Corrupt(format!(
                    "unsupported format version {version} (this build reads {FORMAT_VERSION})"
                )));
            }
            if page[META_FLAGS] & FLAG_DIRTY != 0 {
                return Err(StorageError::DirtyShutdown);
            }
            Ok(())
        })?
    }

    /// The usable payload size of a page — the physical page size minus
    /// the CRC trailer. All structure capacities derive from this.
    pub fn page_size(&self) -> usize {
        self.pager.page_size() - PAGE_TRAILER
    }

    /// The physical page size of the backing store (payload + trailer).
    pub fn physical_page_size(&self) -> usize {
        self.pager.page_size()
    }

    /// Number of pages in the backing store (including meta and free pages).
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Current I/O counters (a snapshot of the atomic counters).
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Zeroes the I/O counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Enables or disables CRC verification on buffer-pool misses.
    /// On by default; the checksum-overhead bench flips it off to measure
    /// the cost. Writes are stamped either way.
    pub fn set_verify_checksums(&self, on: bool) {
        self.verify_checksums.store(on, Ordering::Relaxed);
    }

    /// Number of buffer-pool shards (derived from the pool size).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current data version: a counter bumped by every mutating
    /// operation (`with_page_mut`, `allocate_page`, `free_page`, root-slot
    /// and blob writes). Anchored cursors compare this against the value
    /// they pinned to detect that their cached root-to-leaf path may be
    /// stale. Relaxed ordering suffices: mutations and the probes that
    /// observe them are already ordered by the env's locks.
    pub fn data_version(&self) -> u64 {
        self.data_version.load(Ordering::Relaxed)
    }

    fn bump_data_version(&self) {
        self.data_version.fetch_add(1, Ordering::Relaxed);
    }

    // ---- checksum trailer ----

    /// Recomputes and stores the CRC trailer of a physical page buffer
    /// (shared machinery with the WAL: [`crate::checksum::stamp_trailer`]).
    fn stamp_page(data: &mut [u8]) {
        stamp_trailer(data);
    }

    /// Checks the CRC trailer of a freshly read physical page buffer.
    fn verify_page(data: &[u8], id: PageId) -> Result<()> {
        verify_trailer(data).map_err(|(stored, computed)| StorageError::ChecksumMismatch {
            page: id.0,
            stored,
            computed,
        })
    }

    // ---- buffer pool ----

    // xk-analyze: allow(panic_path, reason = "slot is id modulo shards.len(), which is non-zero by construction")
    fn shard(&self, id: PageId) -> MutexGuard<'_, Shard> {
        let slot = id.0 as usize % self.shards.len();
        self.shards[slot].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn write_lock(&self) -> MutexGuard<'_, WriteState> {
        self.write_state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Loads `id` into its shard (if absent) and returns its frame index.
    /// Pool misses verify the page checksum before the page is admitted.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "miss path reads the page into the frame this shard guard owns; the documented pool design")
    fn fetch(&self, shard: &mut Shard, id: PageId) -> Result<usize> {
        self.stats.record_logical_read();
        if let Some(&idx) = shard.map.get(&id) {
            shard.touch(idx);
            return Ok(idx);
        }
        self.stats.record_disk_read();
        let idx = self.acquire_frame(shard)?;
        let ps = self.pager.page_size();
        if shard.frames[idx].data.len() != ps {
            shard.frames[idx].data = vec![0u8; ps].into_boxed_slice();
        }
        if let Err(e) = self.pager.read_page(id, &mut shard.frames[idx].data) {
            // Hand the frame back so a failing pager cannot drain the pool.
            shard.free_frames.push(idx);
            return Err(e);
        }
        if self.verify_checksums.load(Ordering::Relaxed) {
            if let Err(e) = Self::verify_page(&shard.frames[idx].data, id) {
                shard.free_frames.push(idx);
                return Err(e);
            }
        }
        shard.frames[idx].dirty = false;
        shard.frames[idx].logged = true;
        shard.frames[idx].log_stamp = 0;
        shard.frames[idx].page = id;
        shard.map.insert(id, idx);
        shard.lru_push_front(idx);
        Ok(idx)
    }

    fn push_fresh_frame(&self, shard: &mut Shard) -> usize {
        let ps = self.pager.page_size();
        shard.frames.push(Frame {
            data: vec![0u8; ps].into_boxed_slice(),
            dirty: false,
            logged: true,
            log_stamp: 0,
            prev: NIL,
            next: NIL,
            page: PageId(u32::MAX),
        });
        shard.frames.len() - 1
    }

    /// Finds a free frame in the shard, evicting its LRU page if full.
    /// Frames holding un-logged data are never victims: writing them to
    /// the database file before their WAL record is durable would break
    /// the commit-record atomicity point. When every frame is pinned that
    /// way, the shard temporarily overshoots its capacity instead.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "eviction write-back of the victim frame happens under its shard guard by design")
    fn acquire_frame(&self, shard: &mut Shard) -> Result<usize> {
        if let Some(idx) = shard.free_frames.pop() {
            return Ok(idx);
        }
        if shard.frames.len() < self.shard_capacity {
            return Ok(self.push_fresh_frame(shard));
        }
        // Evict the shard's least recently used evictable page.
        let mut victim = shard.lru_tail;
        while victim != NIL && shard.frames[victim].dirty && !shard.frames[victim].logged {
            victim = shard.frames[victim].prev;
        }
        if victim == NIL {
            return Ok(self.push_fresh_frame(shard));
        }
        shard.lru_unlink(victim);
        let page = shard.frames[victim].page;
        if shard.frames[victim].dirty {
            // Write-back is safe without the write lock: the page became
            // dirty under it, after the dirty mark reached disk.
            self.stats.record_disk_write();
            // Borrow dance: take the buffer out while writing.
            let mut data = std::mem::take(&mut shard.frames[victim].data);
            Self::stamp_page(&mut data);
            let res = self.pager.write_page(page, &data);
            shard.frames[victim].data = data;
            res?;
        }
        self.stats.record_eviction();
        shard.map.remove(&page);
        Ok(victim)
    }

    /// Forces the on-disk dirty flag on before the first mutation of this
    /// "write epoch" — the write-ahead half of the clean-shutdown
    /// protocol. No data page can reach disk while the file still claims
    /// to be clean; `flush` clears the flag again as its final act.
    /// Caller holds the write lock.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "dirty-marking persists the meta page before first reuse; write ordering requires the guard")
    fn ensure_dirty_marked(&self, ws: &mut WriteState) -> Result<()> {
        if !ws.clean_on_disk {
            return Ok(());
        }
        let shard = &mut *self.shard(PageId::META);
        let idx = self.fetch(shard, PageId::META)?;
        shard.frames[idx].data[META_FLAGS] |= FLAG_DIRTY;
        self.stats.record_disk_write();
        let mut data = std::mem::take(&mut shard.frames[idx].data);
        Self::stamp_page(&mut data);
        let res = self.pager.write_page(PageId::META, &data);
        shard.frames[idx].data = data;
        res?;
        self.pager.sync()?;
        shard.frames[idx].dirty = false;
        ws.clean_on_disk = false;
        Ok(())
    }

    /// Runs `f` with read access to the payload of page `id`. The shard
    /// lock is held while `f` runs: `f` must not call back into the env.
    ///
    /// Under a [`ReadPin`] (this thread pinned an epoch), the snapshot
    /// version table is consulted first — still under the page's shard
    /// lock, so the transition from "no version" to "version captured"
    /// cannot tear: the writer captures a page's pre-image under the same
    /// shard lock it mutates the frame under.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "the read fixes the frame this guard pins; see module docs on the pool design")
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let usable = self.page_size();
        let pin = PINNED.with(|c| c.get());
        let shard = &mut *self.shard(id);
        if pin != 0 {
            let version = {
                let snap = self.snap.lock().unwrap_or_else(|e| e.into_inner());
                snap.versions.get(&id).and_then(|vers| {
                    // Ascending tags: `find` yields the smallest tag ≥ pin.
                    vers.iter().find(|(t, _)| *t >= pin).map(|(_, img)| Arc::clone(img))
                })
            };
            if let Some(img) = version {
                self.stats.record_logical_read();
                return Ok(f(&img[..usable]));
            }
        }
        let idx = self.fetch(shard, id)?;
        Ok(f(&shard.frames[idx].data[..usable]))
    }

    /// Runs `f` with write access to the payload of page `id`; the page
    /// is marked dirty (in the pool and, write-ahead, on disk).
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut ws = self.write_lock();
        self.ensure_dirty_marked(&mut ws)?;
        self.bump_data_version();
        self.page_mut_locked(&mut ws, id, f)
    }

    /// `with_page_mut` body, for callers already holding the write lock
    /// with the dirty mark ensured. Inside a transaction, the first touch
    /// of each page captures its pre-image — once for rollback (undo) and
    /// once for snapshot readers (filed under the transaction's tag) —
    /// and un-logs the frame so it cannot reach the database file before
    /// the transaction's WAL record does.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "the write path pins the frame under its shard guard by design")
    fn page_mut_locked<R>(
        &self,
        ws: &mut WriteState,
        id: PageId,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        let usable = self.page_size();
        let shard = &mut *self.shard(id);
        let idx = self.fetch(shard, id)?;
        if let Some(txn) = ws.txn.as_mut() {
            if let std::collections::hash_map::Entry::Vacant(slot) = txn.undo.entry(id) {
                let image: Arc<[u8]> = Arc::from(&*shard.frames[idx].data);
                slot.insert(UndoEntry {
                    image: Arc::clone(&image),
                    prior_logged: shard.frames[idx].logged,
                    prior_stamp: shard.frames[idx].log_stamp,
                });
                txn.order.push(id);
                let mut snap = self.snap.lock().unwrap_or_else(|e| e.into_inner());
                snap.versions.entry(id).or_default().push((txn.tag, image));
            }
            if self.wal.is_some() {
                shard.frames[idx].logged = false;
                shard.frames[idx].log_stamp = txn.stamp;
            }
        }
        shard.frames[idx].dirty = true;
        Ok(f(&mut shard.frames[idx].data[..usable]))
    }

    /// Copies the payload of page `id` out of the pool.
    pub fn read_page_copy(&self, id: PageId) -> Result<Vec<u8>> {
        self.with_page(id, |p| p.to_vec())
    }

    /// Writes back every dirty page (the pool keeps its contents), then
    /// marks the file clean. Two phases, each followed by a sync: data
    /// pages first, the clean meta page last, so a crash between the two
    /// still leaves the dirty flag set.
    ///
    /// Safe against concurrent readers: a page can only become dirty
    /// under the write lock (held here), so the dirty set can only
    /// shrink while flush runs. A reader evicting a still-dirty page
    /// writes it back *before* this flush reaches that shard — and hence
    /// before the phase-1 sync — never after.
    // xk-analyze: root(durability_order)
    pub fn flush(&self) -> Result<()> {
        let mut ws = self.write_lock();
        self.flush_locked(&mut ws)
    }

    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "flush writes each dirty frame back under its shard guard; the documented pool design")
    fn flush_locked(&self, ws: &mut WriteState) -> Result<()> {
        // On a durable env, checkpoint the log first: syncing the WAL
        // re-logs every committed frame, so the write-back below covers
        // everything that is allowed to reach the database file.
        if self.wal.is_some() {
            self.sync_wal()?;
        }
        let any_dirty = self.shards.iter().any(|s| {
            let shard = s.lock().unwrap_or_else(|e| e.into_inner());
            shard.frames.iter().any(|f| f.dirty && f.page.0 != u32::MAX)
        });
        if !any_dirty && ws.clean_on_disk {
            return Ok(()); // read-only session: nothing to write
        }
        // Phase 1: all dirty *logged* pages except the meta page. A frame
        // whose WAL record is not durable (an open transaction's writes)
        // stays in the pool.
        let mut skipped_unlogged = 0usize;
        for s in &self.shards {
            let shard = &mut *s.lock().unwrap_or_else(|e| e.into_inner());
            for idx in 0..shard.frames.len() {
                let page = shard.frames[idx].page;
                if !shard.frames[idx].dirty || page.0 == u32::MAX {
                    continue;
                }
                if !shard.frames[idx].logged {
                    skipped_unlogged += 1;
                    continue;
                }
                if page == PageId::META {
                    continue;
                }
                self.stats.record_disk_write();
                let mut data = std::mem::take(&mut shard.frames[idx].data);
                Self::stamp_page(&mut data);
                let res = self.pager.write_page(page, &data);
                shard.frames[idx].data = data;
                res?;
                shard.frames[idx].dirty = false;
            }
        }
        self.pager.sync()?;
        if skipped_unlogged > 0 || ws.txn.is_some() {
            // Mid-transaction checkpoint: the file must stay dirty (it is
            // not self-consistent without the WAL), so skip phase 2 and
            // keep the log.
            return Ok(());
        }
        // Phase 2: the meta page, with the dirty flag cleared.
        {
            let shard = &mut *self.shard(PageId::META);
            let idx = self.fetch(shard, PageId::META)?;
            shard.frames[idx].data[META_FLAGS] &= !FLAG_DIRTY;
            self.stats.record_disk_write();
            let mut data = std::mem::take(&mut shard.frames[idx].data);
            Self::stamp_page(&mut data);
            let res = self.pager.write_page(PageId::META, &data);
            shard.frames[idx].data = data;
            res?;
            shard.frames[idx].dirty = false;
        }
        self.pager.sync()?;
        ws.clean_on_disk = true;
        // The checkpoint is durable: every logged transaction is now in
        // the database file, so the log can be retired. A crash between
        // the phase-2 sync and the reset replays already-applied
        // transactions — idempotent, hence harmless.
        if let Some(wal) = &self.wal {
            wal.reset()?;
        }
        Ok(())
    }

    /// Flushes and then drops every cached page — the *cold cache* state of
    /// the paper's experiments: the next access to any page is a disk read.
    /// Frames holding un-logged transaction writes survive (dropping them
    /// would lose the only copy of data the WAL has not yet made durable).
    pub fn clear_cache(&self) -> Result<()> {
        let mut ws = self.write_lock();
        self.flush_locked(&mut ws)?;
        for s in &self.shards {
            let shard = &mut *s.lock().unwrap_or_else(|e| e.into_inner());
            let kept: Vec<Frame> = shard
                .frames
                .drain(..)
                .filter(|f| f.dirty && !f.logged && f.page.0 != u32::MAX)
                .collect();
            shard.map.clear();
            shard.free_frames.clear();
            shard.lru_head = NIL;
            shard.lru_tail = NIL;
            shard.frames = kept;
            for idx in 0..shard.frames.len() {
                shard.frames[idx].prev = NIL;
                shard.frames[idx].next = NIL;
                shard.map.insert(shard.frames[idx].page, idx);
                shard.lru_push_front(idx);
            }
        }
        Ok(())
    }

    /// Number of pages currently cached (across all shards).
    pub fn cached_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// Number of pool frames currently allocated (across all shards);
    /// bounded by the pool capacity even under failing reads.
    pub fn resident_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).frames.len())
            .sum()
    }

    // ---- allocation ----

    /// Allocates a page: pops the free list or grows the file.
    // xk-analyze: allow(panic_path, reason = "freelist head bytes are a fixed 4-byte header slice")
    // xk-analyze: allow(io_under_lock, reason = "frame acquisition for the fresh page evicts under the shard guard by design")
    pub fn allocate_page(&self) -> Result<PageId> {
        let mut ws = self.write_lock();
        self.ensure_dirty_marked(&mut ws)?;
        self.bump_data_version();
        let head = self.freelist_head()?;
        if let Some(free) = head {
            let next = self.with_page(free, |p| {
                u32::from_le_bytes(p[..4].try_into().expect("4-byte freelist link"))
            })?;
            self.set_freelist_head(&mut ws, PageId::decode_opt(next))?;
            // Zero the page for the new user.
            self.page_mut_locked(&mut ws, free, |p| p.fill(0))?;
            return Ok(free);
        }
        let id = self.pager.grow()?;
        // Inside a transaction the fresh page has no pre-image to undo:
        // rollback abandons it instead (see `abort_txn`), and its frame
        // is un-logged like any other transactional write.
        let in_txn = if let Some(txn) = ws.txn.as_mut() {
            txn.grown.push(id);
            Some(txn.stamp)
        } else {
            None
        };
        // Materialize a zeroed frame for the new page so the first access
        // does not count as a disk read (the page has never been written).
        let shard = &mut *self.shard(id);
        let idx = self.acquire_frame(shard)?;
        let ps = self.pager.page_size();
        if shard.frames[idx].data.len() != ps {
            shard.frames[idx].data = vec![0u8; ps].into_boxed_slice();
        } else {
            shard.frames[idx].data.fill(0);
        }
        shard.frames[idx].dirty = true;
        match in_txn {
            Some(stamp) if self.wal.is_some() => {
                shard.frames[idx].logged = false;
                shard.frames[idx].log_stamp = stamp;
            }
            _ => {
                shard.frames[idx].logged = true;
                shard.frames[idx].log_stamp = 0;
            }
        }
        shard.frames[idx].page = id;
        shard.map.insert(id, idx);
        shard.lru_push_front(idx);
        Ok(id)
    }

    /// Returns a page to the free list.
    pub fn free_page(&self, id: PageId) -> Result<()> {
        assert_ne!(id, PageId::META, "cannot free the meta page");
        let mut ws = self.write_lock();
        self.ensure_dirty_marked(&mut ws)?;
        self.bump_data_version();
        let head = self.freelist_head()?;
        self.page_mut_locked(&mut ws, id, |p| {
            p[..4].copy_from_slice(&PageId::encode_opt(head).to_le_bytes());
        })?;
        self.set_freelist_head(&mut ws, Some(id))
    }

    /// Caller holds the write lock with the dirty mark ensured.
    // xk-analyze: allow(panic_path, reason = "meta-page header slices are fixed-width")
    fn freelist_head(&self) -> Result<Option<PageId>> {
        self.with_page(PageId::META, |p| {
            PageId::decode_opt(u32::from_le_bytes(
                p[META_FREELIST..META_FREELIST + 4]
                    .try_into()
                    .expect("4-byte freelist head in meta"),
            ))
        })
    }

    /// Caller holds the write lock with the dirty mark ensured.
    fn set_freelist_head(&self, ws: &mut WriteState, head: Option<PageId>) -> Result<()> {
        self.page_mut_locked(ws, PageId::META, |p| {
            p[META_FREELIST..META_FREELIST + 4]
                .copy_from_slice(&PageId::encode_opt(head).to_le_bytes());
        })
    }

    // ---- named roots & user blob ----

    /// Reads named root slot `slot` (for B+tree roots and list directories).
    // xk-analyze: allow(panic_path, reason = "root-slot offsets are bounded by ROOT_SLOTS")
    pub fn root_slot(&self, slot: usize) -> Result<Option<PageId>> {
        assert!(slot < ROOT_SLOTS);
        self.with_page(PageId::META, |p| {
            let off = META_ROOTS + slot * 4;
            PageId::decode_opt(u32::from_le_bytes(
                p[off..off + 4].try_into().expect("4-byte root slot in meta"),
            ))
        })
    }

    /// Writes named root slot `slot`.
    // xk-analyze: allow(panic_path, reason = "root-slot offsets are bounded by ROOT_SLOTS")
    pub fn set_root_slot(&self, slot: usize, page: Option<PageId>) -> Result<()> {
        assert!(slot < ROOT_SLOTS);
        let mut ws = self.write_lock();
        self.ensure_dirty_marked(&mut ws)?;
        self.bump_data_version();
        self.page_mut_locked(&mut ws, PageId::META, |p| {
            let off = META_ROOTS + slot * 4;
            p[off..off + 4].copy_from_slice(&PageId::encode_opt(page).to_le_bytes());
        })
    }

    /// Maximum size of the user metadata blob for this page size.
    pub fn user_blob_capacity(&self) -> usize {
        self.page_size() - META_BLOB
    }

    /// Stores an application metadata blob in the meta page (e.g. the
    /// serialized level table). Must fit in [`Self::user_blob_capacity`].
    // xk-analyze: allow(panic_path, reason = "blob.len() is checked against user_blob_capacity before the copy")
    pub fn set_user_blob(&self, blob: &[u8]) -> Result<()> {
        if blob.len() > self.user_blob_capacity() {
            return Err(StorageError::EntryTooLarge {
                entry_bytes: blob.len(),
                max_bytes: self.user_blob_capacity(),
            });
        }
        let mut ws = self.write_lock();
        self.ensure_dirty_marked(&mut ws)?;
        self.bump_data_version();
        self.page_mut_locked(&mut ws, PageId::META, |p| {
            p[META_BLOB_LEN..META_BLOB_LEN + 4]
                .copy_from_slice(&(blob.len() as u32).to_le_bytes());
            p[META_BLOB..META_BLOB + blob.len()].copy_from_slice(blob);
        })
    }

    // ---- durability: WAL, transactions, snapshot reads ----

    /// Attaches a write-ahead log. Must happen before the env is shared
    /// (hence `&mut self`); typically right after [`crate::recover`] has
    /// replayed the previous incarnation's log. With a WAL attached,
    /// transactional writes are logged at commit and a frame never
    /// reaches the database file before its WAL record is durable.
    pub fn attach_wal(&mut self, wal: Wal) -> Result<()> {
        if wal.db_page_size() as usize != self.pager.page_size() {
            return Err(StorageError::Corrupt(format!(
                "WAL page size {} does not match database page size {}",
                wal.db_page_size(),
                self.pager.page_size()
            )));
        }
        self.wal = Some(wal);
        Ok(())
    }

    /// True when a write-ahead log is attached.
    pub fn has_wal(&self) -> bool {
        self.wal.is_some()
    }

    /// Transactions committed to the WAL since attach (for batch-size
    /// accounting: commits ÷ syncs = mean group-commit batch).
    pub fn wal_commit_count(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.commit_count())
    }

    /// Fsyncs issued by the WAL since attach.
    pub fn wal_sync_count(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.sync_count())
    }

    /// The last committed epoch. Starts at 1 on a fresh env; bumped by
    /// every `commit_txn`. Relaxed is enough: callers that need an epoch
    /// consistent with the version table use [`Self::pin_snapshot`],
    /// which reads it under the snapshot lock.
    pub fn current_epoch(&self) -> u64 {
        self.committed_epoch.load(Ordering::Relaxed)
    }

    /// Pins the current epoch for this thread: until the returned guard
    /// drops, every `with_page` on this thread sees the database as of
    /// this moment, regardless of concurrent commits. Pins nest (the
    /// guard restores the outer pin on drop).
    ///
    /// Reading the epoch *inside* the snapshot critical section makes
    /// registration race-free: `commit_txn` publishes the new epoch and
    /// prunes old versions under the same lock, so a pin can never
    /// register an epoch whose versions were already pruned.
    pub fn pin_snapshot(&self) -> ReadPin<'_> {
        let tag = {
            let mut snap = lock(&self.snap);
            let tag = self.committed_epoch.load(Ordering::Relaxed);
            *snap.pins.entry(tag).or_insert(0) += 1;
            tag
        };
        let prev = PINNED.with(|c| c.replace(tag));
        ReadPin { env: self, tag, prev }
    }

    /// Drops one pin on `tag`, pruning versions that no reader can need
    /// any more. Called from [`ReadPin`]'s destructor.
    fn unpin(&self, tag: u64) {
        let mut snap = lock(&self.snap);
        if let Some(n) = snap.pins.get_mut(&tag) {
            *n -= 1;
            if *n == 0 {
                snap.pins.remove(&tag);
                Self::prune_versions_locked(&mut snap);
            }
        }
    }

    /// Drops versions no pinned reader can ever select. A reader pinned
    /// at `P` selects the smallest tag ≥ `P`, so a version older than
    /// every pin is unreachable. The in-flight transaction's tag is
    /// always kept: a pin registered *now* would resolve to it.
    fn prune_versions_locked(snap: &mut SnapTable) {
        let min_pin = snap.pins.keys().next().copied();
        let active = snap.active_tag;
        snap.versions.retain(|_, vers| {
            vers.retain(|(t, _)| {
                (active != 0 && *t == active) || min_pin.is_some_and(|m| *t >= m)
            });
            !vers.is_empty()
        });
    }

    /// Opens a transaction. All writes until `commit_txn` / `abort_txn`
    /// are atomic: rollback restores every touched page, and (with a WAL
    /// attached) none of them reaches the database file before the
    /// commit record is durable. One transaction at a time; nesting is
    /// [`StorageError::TxnMisuse`].
    pub fn begin_txn(&self) -> Result<()> {
        let mut ws = self.write_lock();
        if ws.txn.is_some() {
            return Err(StorageError::TxnMisuse("begin_txn inside an open transaction"));
        }
        self.ensure_dirty_marked(&mut ws)?;
        let tag = self.committed_epoch.load(Ordering::Relaxed);
        let stamp = self.txn_stamps.fetch_add(1, Ordering::Relaxed) + 1;
        lock(&self.snap).active_tag = tag;
        ws.txn = Some(TxnState {
            tag,
            stamp,
            undo: HashMap::new(),
            order: Vec::new(),
            grown: Vec::new(),
        });
        Ok(())
    }

    /// Commits the open transaction: logs every touched page to the WAL
    /// (Begin, images, Commit — the commit record is the atomicity
    /// point), publishes the new epoch to readers, and prunes snapshot
    /// versions nobody can need. Durability is *not* waited for here —
    /// call [`Self::sync_wal`] / [`Self::wait_wal_durable`] (the group
    /// commit machinery batches that fsync across transactions).
    ///
    /// On a WAL append failure the transaction is left open so the
    /// caller can [`Self::abort_txn`] it.
    // xk-analyze: root(durability_order)
    pub fn commit_txn(&self) -> Result<TxnCommit> {
        let mut ws = self.write_lock();
        let txn = ws
            .txn
            .take()
            .ok_or(StorageError::TxnMisuse("commit_txn without an open transaction"))?;
        let epoch = txn.tag + 1;
        let mut lsn = 0u64;
        if let Some(wal) = &self.wal {
            let mut seen = HashSet::new();
            let mut pages: Vec<PageId> = Vec::new();
            for &id in txn.order.iter().chain(txn.grown.iter()) {
                if seen.insert(id) {
                    pages.push(id);
                }
            }
            let appended: Result<u64> = (|| {
                // xk-analyze: allow(lock_order, reason = "false positive from bare-name aliasing of Wal::append: write_state is held exactly once for the whole commit; the closure only takes Wal.buf and shard guards")
                wal.append_begin()?;
                for &id in &pages {
                    let image = self.stamped_frame_copy(id)?;
                    wal.append_image(id.0, &image)?;
                }
                wal.append_commit(epoch)
            })();
            match appended {
                Ok(l) => lsn = l,
                Err(e) => {
                    ws.txn = Some(txn);
                    return Err(e);
                }
            }
            let pages: Vec<(PageId, u64)> = pages.into_iter().map(|id| (id, txn.stamp)).collect();
            lock(&self.unsynced).push(UnsyncedTxn { lsn, pages });
        }
        {
            // Epoch publication, active-tag clearing, and pruning are one
            // critical section so pin registration can never observe a
            // half-applied commit.
            let mut snap = lock(&self.snap);
            self.committed_epoch.store(epoch, Ordering::Relaxed);
            snap.active_tag = 0;
            Self::prune_versions_locked(&mut snap);
        }
        self.bump_data_version();
        Ok(TxnCommit { epoch, lsn })
    }

    /// Rolls back the open transaction: every touched page is restored
    /// to its pre-image (with its prior WAL-pinning state — the prior
    /// bytes may belong to a committed-but-unsynced transaction), pages
    /// grown by the transaction are abandoned, and the transaction's
    /// snapshot versions are withdrawn.
    ///
    /// Grown pages are deliberately *not* linked into the free list:
    /// free-list surgery outside a transaction could be half-persisted
    /// by eviction write-backs and survive crash recovery in a mixed
    /// state. They remain as zero pages in the file — a bounded space
    /// leak, never a correctness hazard.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "undo images are restored into frames pinned under their shard guard; the documented pool design")
    pub fn abort_txn(&self) -> Result<()> {
        let mut ws = self.write_lock();
        let txn = ws
            .txn
            .take()
            .ok_or(StorageError::TxnMisuse("abort_txn without an open transaction"))?;
        let mut first_err: Option<StorageError> = None;
        for id in txn.order.iter().rev() {
            let entry = &txn.undo[id];
            let shard = &mut *self.shard(*id);
            match self.fetch(shard, *id) {
                Ok(idx) => {
                    shard.frames[idx].data.copy_from_slice(&entry.image);
                    shard.frames[idx].dirty = true;
                    shard.frames[idx].logged = entry.prior_logged || self.wal.is_none();
                    shard.frames[idx].log_stamp = entry.prior_stamp;
                }
                Err(e) => {
                    // Keep restoring the rest; the unrestored frame stays
                    // un-logged, so it can never reach the file and the
                    // WAL replay path remains the source of truth.
                    first_err.get_or_insert(e);
                }
            }
        }
        for &id in &txn.grown {
            let shard = &mut *self.shard(id);
            if let Some(idx) = shard.map.remove(&id) {
                shard.lru_unlink(idx);
                shard.frames[idx].dirty = false;
                shard.frames[idx].logged = true;
                shard.frames[idx].log_stamp = 0;
                shard.frames[idx].page = PageId(u32::MAX);
                shard.free_frames.push(idx);
            }
        }
        {
            let mut snap = lock(&self.snap);
            let tag = txn.tag;
            snap.versions.retain(|_, vers| {
                vers.retain(|(t, _)| *t != tag);
                !vers.is_empty()
            });
            snap.active_tag = 0;
        }
        self.bump_data_version();
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Fsyncs the WAL (one fsync covers every commit appended since the
    /// last one — that is the group in *group commit*) and re-marks the
    /// frames of now-durable transactions as safe to write back. A frame
    /// is only re-marked if its `log_stamp` still matches: a later
    /// transaction's bytes in the same frame are *its* problem, not this
    /// sync's. Returns the highest durable LSN. No-op without a WAL.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    pub fn sync_wal(&self) -> Result<u64> {
        let Some(wal) = &self.wal else {
            return Ok(0);
        };
        let durable = wal.sync()?;
        let drained: Vec<UnsyncedTxn> = {
            let mut unsynced = lock(&self.unsynced);
            let mut keep = Vec::new();
            let mut done = Vec::new();
            for t in unsynced.drain(..) {
                if t.lsn <= durable {
                    done.push(t);
                } else {
                    keep.push(t);
                }
            }
            *unsynced = keep;
            done
        };
        for t in &drained {
            for &(id, stamp) in &t.pages {
                let shard = &mut *self.shard(id);
                if let Some(&idx) = shard.map.get(&id) {
                    if !shard.frames[idx].logged && shard.frames[idx].log_stamp == stamp {
                        shard.frames[idx].logged = true;
                    }
                }
            }
        }
        Ok(durable)
    }

    /// Blocks until the WAL record at `lsn` is durable (some thread —
    /// the group-commit thread, a flush, or a concurrent committer —
    /// must be issuing [`Self::sync_wal`] calls). Immediate without a
    /// WAL.
    pub fn wait_wal_durable(&self, lsn: u64) -> Result<()> {
        match &self.wal {
            Some(wal) => wal.wait_durable(lsn),
            None => Ok(()),
        }
    }

    /// Copies page `id` out of the pool as a full physical page with a
    /// freshly stamped CRC trailer — the exact bytes recovery will write
    /// into the database file when it replays this image.
    // xk-analyze: allow(panic_path, reason = "frame indices are intrusive-LRU links maintained under this shard guard")
    // xk-analyze: allow(io_under_lock, reason = "the image copy fixes the frame under its shard guard; the documented pool design")
    fn stamped_frame_copy(&self, id: PageId) -> Result<Vec<u8>> {
        let shard = &mut *self.shard(id);
        let idx = self.fetch(shard, id)?;
        let mut data = shard.frames[idx].data.to_vec();
        Self::stamp_page(&mut data);
        Ok(data)
    }

    /// Reads the application metadata blob.
    // xk-analyze: allow(panic_path, reason = "the 4-byte length slice sits at a constant offset under MIN_PAGE_SIZE; the variable-length read is guarded by the capacity check")
    pub fn user_blob(&self) -> Result<Vec<u8>> {
        let capacity = self.user_blob_capacity();
        self.with_page(PageId::META, |p| {
            let len = u32::from_le_bytes(
                p[META_BLOB_LEN..META_BLOB_LEN + 4]
                    .try_into()
                    .expect("4-byte blob length in meta"),
            ) as usize;
            if len > capacity {
                return Err(StorageError::Corrupt(format!(
                    "meta blob length {len} exceeds capacity {capacity}"
                )));
            }
            Ok(p[META_BLOB..META_BLOB + len].to_vec())
        })?
    }
}

impl Drop for StorageEnv {
    fn drop(&mut self) {
        // xk-analyze: allow(swallowed_result, reason = "Drop cannot report; explicit flush() is the checked path and tests assert it")
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(pool_pages: usize) -> StorageEnv {
        StorageEnv::in_memory(EnvOptions { page_size: 256, pool_pages })
    }

    #[test]
    fn page_size_excludes_trailer() {
        let env = mem(16);
        assert_eq!(env.page_size(), 256 - PAGE_TRAILER);
        assert_eq!(env.physical_page_size(), 256);
    }

    #[test]
    fn env_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StorageEnv>();
        assert_send_sync::<std::sync::Arc<StorageEnv>>();
    }

    #[test]
    fn shard_count_scales_with_pool() {
        assert_eq!(mem(8).shard_count(), 1, "tiny pool: exact single LRU");
        assert_eq!(mem(16).shard_count(), 2);
        assert_eq!(mem(64).shard_count(), 8);
        assert_eq!(mem(1024).shard_count(), 8, "capped at MAX_SHARDS");
    }

    #[test]
    fn allocate_write_read() {
        let env = mem(16);
        let a = env.allocate_page().unwrap();
        let b = env.allocate_page().unwrap();
        assert_ne!(a, b);
        env.with_page_mut(a, |p| p[10] = 42).unwrap();
        env.with_page_mut(b, |p| p[10] = 43).unwrap();
        assert_eq!(env.with_page(a, |p| p[10]).unwrap(), 42);
        assert_eq!(env.with_page(b, |p| p[10]).unwrap(), 43);
    }

    #[test]
    fn free_list_reuses_pages() {
        let env = mem(16);
        let a = env.allocate_page().unwrap();
        let before = env.page_count();
        env.free_page(a).unwrap();
        let b = env.allocate_page().unwrap();
        assert_eq!(a, b, "freed page must be reused");
        assert_eq!(env.page_count(), before);
        // Reused page is zeroed.
        assert_eq!(env.with_page(b, |p| p[0]).unwrap(), 0);
    }

    #[test]
    fn eviction_and_stats() {
        let env = mem(8); // tiny pool
        let pages: Vec<_> = (0..20).map(|_| env.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            env.with_page_mut(p, |d| d[0] = i as u8).unwrap();
        }
        // All data survives eviction.
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(env.with_page(p, |d| d[0]).unwrap(), i as u8);
        }
        let s = env.stats();
        assert!(s.evictions > 0, "pool of 8 with 20 pages must evict");
        assert!(s.disk_reads > 0);
    }

    #[test]
    fn clear_cache_forces_disk_reads() {
        let env = mem(64);
        let p = env.allocate_page().unwrap();
        env.with_page_mut(p, |d| d[0] = 7).unwrap();
        env.clear_cache().unwrap();
        env.reset_stats();
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 7);
        assert_eq!(env.stats().disk_reads, 1, "cold cache: first access reads disk");
        env.reset_stats();
        env.with_page(p, |d| d[0]).unwrap();
        assert_eq!(env.stats().disk_reads, 0, "hot cache: second access hits pool");
    }

    #[test]
    fn data_version_bumps_on_every_mutation() {
        let env = mem(16);
        let v0 = env.data_version();
        let p = env.allocate_page().unwrap();
        assert!(env.data_version() > v0, "allocate_page bumps");
        let v1 = env.data_version();
        env.with_page_mut(p, |d| d[0] = 1).unwrap();
        assert!(env.data_version() > v1, "with_page_mut bumps");
        let v2 = env.data_version();
        env.set_root_slot(0, Some(p)).unwrap();
        assert!(env.data_version() > v2, "set_root_slot bumps");
        let v3 = env.data_version();
        env.set_user_blob(b"x").unwrap();
        assert!(env.data_version() > v3, "set_user_blob bumps");
        let v4 = env.data_version();
        env.free_page(p).unwrap();
        assert!(env.data_version() > v4, "free_page bumps");
        // Reads do not bump.
        let v5 = env.data_version();
        env.with_page(PageId::META, |_| ()).unwrap();
        env.root_slot(0).unwrap();
        env.user_blob().unwrap();
        assert_eq!(env.data_version(), v5, "reads leave the version alone");
    }

    #[test]
    fn root_slots_persist() {
        let env = mem(16);
        assert_eq!(env.root_slot(3).unwrap(), None);
        env.set_root_slot(3, Some(PageId(9))).unwrap();
        assert_eq!(env.root_slot(3).unwrap(), Some(PageId(9)));
        env.set_root_slot(3, None).unwrap();
        assert_eq!(env.root_slot(3).unwrap(), None);
    }

    #[test]
    fn user_blob_roundtrip() {
        let env = mem(16);
        assert_eq!(env.user_blob().unwrap(), Vec::<u8>::new());
        env.set_user_blob(b"level-table-v1").unwrap();
        assert_eq!(env.user_blob().unwrap(), b"level-table-v1");
        let too_big = vec![0u8; env.user_blob_capacity() + 1];
        assert!(env.set_user_blob(&too_big).is_err());
    }

    #[test]
    fn file_env_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("xk-env-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("env.db");
        let opts = EnvOptions { page_size: 512, pool_pages: 16 };
        let page;
        {
            let env = StorageEnv::create(&path, opts.clone()).unwrap();
            page = env.allocate_page().unwrap();
            env.with_page_mut(page, |p| p[5] = 99).unwrap();
            env.set_root_slot(0, Some(page)).unwrap();
            env.set_user_blob(b"hello").unwrap();
            env.flush().unwrap();
        }
        {
            let env = StorageEnv::open(&path, opts).unwrap();
            assert_eq!(env.root_slot(0).unwrap(), Some(page));
            assert_eq!(env.user_blob().unwrap(), b"hello");
            assert_eq!(env.with_page(page, |p| p[5]).unwrap(), 99);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_auto_detects_page_size() {
        let dir = std::env::temp_dir().join(format!("xk-env2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("env.db");
        {
            let env =
                StorageEnv::create(&path, EnvOptions { page_size: 512, pool_pages: 16 }).unwrap();
            let p = env.allocate_page().unwrap();
            env.with_page_mut(p, |d| d[500] = 1).unwrap(); // needs the real 512-byte payload
            env.flush().unwrap();
        }
        // Misconfigured options: the header wins.
        let env =
            StorageEnv::open(&path, EnvOptions { page_size: 4096, pool_pages: 16 }).unwrap();
        assert_eq!(env.physical_page_size(), 512);
        assert_eq!(env.with_page(PageId(1), |d| d[500]).unwrap(), 1);
        drop(env);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_implausible_header_page_size() {
        let dir = std::env::temp_dir().join(format!("xk-env3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("env.db");
        {
            let env =
                StorageEnv::create(&path, EnvOptions { page_size: 512, pool_pages: 16 }).unwrap();
            env.flush().unwrap();
        }
        // Corrupt the stored page size to a non-power-of-two.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&777u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match StorageEnv::open(&path, EnvOptions { page_size: 512, pool_pages: 16 }).err() {
            Some(StorageError::Corrupt(msg)) => {
                assert!(msg.contains("777"), "mentions stored size: {msg}");
                assert!(msg.contains("512"), "mentions configured size: {msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_dirty_file() {
        let dir = std::env::temp_dir().join(format!("xk-env4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("env.db");
        {
            let env =
                StorageEnv::create(&path, EnvOptions { page_size: 256, pool_pages: 16 }).unwrap();
            let p = env.allocate_page().unwrap();
            env.with_page_mut(p, |d| d[0] = 1).unwrap();
            env.flush().unwrap();
            // Simulate a crash mid-write-epoch: the mutation forces the
            // dirty flag to disk; forgetting the env skips the clean
            // flush that Drop would run.
            env.with_page_mut(p, |d| d[1] = 2).unwrap();
            std::mem::forget(env);
        }
        match StorageEnv::open(&path, EnvOptions { page_size: 256, pool_pages: 16 }).err() {
            Some(StorageError::DirtyShutdown) => {}
            other => panic!("expected DirtyShutdown, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_catches_on_disk_bit_flip() {
        let dir = std::env::temp_dir().join(format!("xk-env5-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("env.db");
        let (page, opts) = {
            let opts = EnvOptions { page_size: 256, pool_pages: 16 };
            let env = StorageEnv::create(&path, opts.clone()).unwrap();
            let p = env.allocate_page().unwrap();
            env.with_page_mut(p, |d| d.fill(0x5A)).unwrap();
            env.flush().unwrap();
            (p, opts)
        };
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = page.0 as usize * 256 + 100;
        bytes[offset] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let env = StorageEnv::open(&path, opts).unwrap(); // meta page intact
        match env.with_page(page, |_| ()) {
            Err(StorageError::ChecksumMismatch { page: p, stored, computed }) => {
                assert_eq!(p, page.0);
                assert_ne!(stored, computed);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // Verification off: the flip sails through (bench mode).
        env.set_verify_checksums(false);
        env.with_page(page, |_| ()).unwrap();
        drop(env);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_failure_does_not_leak_pool_frames() {
        use crate::fault::{FaultConfig, FaultPager};
        let inner = Box::new(MemPager::new(256));
        // Read op 0 is the meta fetch during create; fail everything after.
        let fault =
            FaultPager::new(inner, FaultConfig { fail_read_at: Some(1), ..FaultConfig::none() });
        let env = StorageEnv::create_with_pager(Box::new(fault), 8).unwrap();
        // Meta is cached from create; force misses on a page that will
        // always fail to read. Every attempt must recycle its frame.
        for _ in 0..100 {
            assert!(env.with_page(PageId(3), |_| ()).is_err());
        }
        assert!(env.resident_frames() <= 8, "failed reads must not grow the pool");
    }

    #[test]
    fn lru_keeps_hot_pages() {
        let env = mem(8);
        let hot = env.allocate_page().unwrap();
        env.with_page_mut(hot, |p| p[0] = 1).unwrap();
        // Touch `hot` between every new allocation; it must never be evicted.
        for _ in 0..30 {
            let p = env.allocate_page().unwrap();
            env.with_page(p, |_| ()).unwrap();
            env.with_page(hot, |_| ()).unwrap();
        }
        let before = env.stats().disk_reads;
        env.with_page(hot, |_| ()).unwrap();
        assert_eq!(env.stats().disk_reads, before, "hot page stays cached");
    }

    /// An env over shared in-memory pagers with a WAL attached, plus the
    /// raw pagers for inspecting what actually reached "disk".
    fn durable_mem(pool_pages: usize) -> (Arc<MemPager>, Arc<MemPager>, StorageEnv) {
        let db = Arc::new(MemPager::new(256));
        let walp = Arc::new(MemPager::new(256));
        let mut env =
            StorageEnv::create_with_pager(Box::new(Arc::clone(&db)), pool_pages).unwrap();
        let wal = Wal::create(Arc::clone(&walp) as Arc<dyn Pager>, 256).unwrap();
        env.attach_wal(wal).unwrap();
        (db, walp, env)
    }

    #[test]
    fn txn_commit_publishes_and_abort_restores() {
        let (_db, _walp, env) = durable_mem(16);
        let p = env.allocate_page().unwrap();
        env.with_page_mut(p, |d| d[0] = 1).unwrap();

        env.begin_txn().unwrap();
        assert!(env.begin_txn().is_err(), "no nesting");
        env.with_page_mut(p, |d| d[0] = 2).unwrap();
        let grown = env.allocate_page().unwrap();
        env.with_page_mut(grown, |d| d[0] = 9).unwrap();
        env.abort_txn().unwrap();
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 1, "abort restores the pre-image");
        assert_eq!(env.with_page(grown, |d| d[0]).unwrap(), 0, "grown page abandoned as zeros");
        assert!(env.abort_txn().is_err(), "nothing left to abort");

        env.begin_txn().unwrap();
        env.with_page_mut(p, |d| d[0] = 3).unwrap();
        let commit = env.commit_txn().unwrap();
        assert_eq!(commit.epoch, 2, "fresh env starts at epoch 1");
        assert!(commit.lsn > 0);
        assert_eq!(env.current_epoch(), 2);
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 3);
        env.sync_wal().unwrap();
        env.wait_wal_durable(commit.lsn).unwrap();
        assert_eq!(env.wal_commit_count(), 1);
        assert_eq!(env.wal_sync_count(), 1);
    }

    #[test]
    fn pinned_reader_ignores_concurrent_commit() {
        let (_db, _walp, env) = durable_mem(16);
        let p = env.allocate_page().unwrap();
        env.with_page_mut(p, |d| d[0] = 10).unwrap();

        let pin = env.pin_snapshot();
        env.begin_txn().unwrap();
        env.with_page_mut(p, |d| d[0] = 20).unwrap();
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 10, "mid-txn: pre-image");
        env.commit_txn().unwrap();
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 10, "post-commit: pin holds");
        let epoch = pin.epoch();
        drop(pin);
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 20, "unpinned: live state");
        assert!(env.current_epoch() > epoch);
    }

    #[test]
    fn new_pin_during_open_txn_sees_pre_images() {
        let (_db, _walp, env) = durable_mem(16);
        let p = env.allocate_page().unwrap();
        env.with_page_mut(p, |d| d[0] = 10).unwrap();
        env.begin_txn().unwrap();
        env.with_page_mut(p, |d| d[0] = 20).unwrap();
        // Pin taken *while* the transaction is open: must resolve to the
        // transaction's pre-image (its tag equals the pinned epoch).
        let pin = env.pin_snapshot();
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 10);
        env.commit_txn().unwrap();
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 10);
        drop(pin);
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 20);
    }

    #[test]
    fn unlogged_frames_never_reach_the_file() {
        let (db, walp, env) = durable_mem(16);
        let pages: Vec<PageId> = (0..12).map(|_| env.allocate_page().unwrap()).collect();
        env.flush().unwrap();
        env.begin_txn().unwrap();
        for &p in &pages {
            env.with_page_mut(p, |d| d.fill(0xAB)).unwrap();
        }
        // Churn the pool to trigger eviction pressure; un-logged frames
        // must be passed over, never written back.
        for &p in &pages {
            env.with_page(p, |_| ()).unwrap();
        }
        let mut buf = vec![0u8; 256];
        for &p in &pages {
            db.read_page(p, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b != 0xAB), "uncommitted bytes leaked to {p:?}");
        }
        env.commit_txn().unwrap();
        env.sync_wal().unwrap();
        env.flush().unwrap();
        for &p in &pages {
            db.read_page(p, &mut buf).unwrap();
            assert_eq!(buf[0], 0xAB, "committed bytes reached the file after checkpoint");
        }
        let out = Wal::scan(&*walp).unwrap().unwrap();
        assert!(out.committed.is_empty(), "checkpoint retires the log");
    }

    #[test]
    fn clear_cache_keeps_open_transaction_writes() {
        let (_db, _walp, env) = durable_mem(16);
        let p = env.allocate_page().unwrap();
        env.with_page_mut(p, |d| d[0] = 5).unwrap();
        env.flush().unwrap();
        env.begin_txn().unwrap();
        env.with_page_mut(p, |d| d[0] = 6).unwrap();
        env.clear_cache().unwrap();
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 6, "txn write survives the purge");
        env.commit_txn().unwrap();
        env.sync_wal().unwrap();
        env.flush().unwrap();
        env.clear_cache().unwrap();
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 6);
    }

    #[test]
    fn crash_after_commit_recovers_from_wal() {
        let db = Arc::new(MemPager::new(256));
        let walp = Arc::new(MemPager::new(256));
        let p;
        {
            let mut env =
                StorageEnv::create_with_pager(Box::new(Arc::clone(&db)), 16).unwrap();
            let wal = Wal::create(Arc::clone(&walp) as Arc<dyn Pager>, 256).unwrap();
            env.attach_wal(wal).unwrap();
            p = env.allocate_page().unwrap();
            env.flush().unwrap();
            env.begin_txn().unwrap();
            env.with_page_mut(p, |d| d[0] = 77).unwrap();
            env.commit_txn().unwrap();
            env.sync_wal().unwrap();
            std::mem::forget(env); // crash: committed + durable, never checkpointed
        }
        match StorageEnv::open_with_pager(Box::new(Arc::clone(&db)), 16).err() {
            Some(StorageError::DirtyShutdown) => {}
            other => panic!("expected DirtyShutdown before recovery, got {other:?}"),
        }
        let report = crate::recovery::recover(&*db, &*walp).unwrap();
        assert!(report.recovered);
        assert_eq!(report.replayed_txns, 1);
        let env = StorageEnv::open_with_pager(Box::new(Arc::clone(&db)), 16).unwrap();
        assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 77, "recovery replayed the commit");
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        let env = mem(16); // 2 shards
        let pages: Vec<PageId> = (0..12).map(|_| env.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            env.with_page_mut(p, |d| d.fill(i as u8 + 1)).unwrap();
        }
        env.clear_cache().unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let env = &env;
                let pages = &pages;
                s.spawn(move || {
                    for round in 0..50 {
                        let p = pages[(t + round * 7) % pages.len()];
                        let fill = (pages.iter().position(|&q| q == p).unwrap() + 1) as u8;
                        env.with_page(p, |d| {
                            assert!(d.iter().all(|&b| b == fill), "torn read of {p:?}");
                        })
                        .unwrap();
                    }
                });
            }
        });
        // Counters add up: every logical read is a hit or a miss.
        let s = env.stats();
        assert!(s.disk_reads <= s.logical_reads);
    }

    #[test]
    fn concurrent_reads_during_mutation_keep_invariants() {
        let env = std::sync::Arc::new(mem(32));
        let stable: Vec<PageId> = (0..8).map(|_| env.allocate_page().unwrap()).collect();
        for (i, &p) in stable.iter().enumerate() {
            env.with_page_mut(p, |d| d.fill(0x40 + i as u8)).unwrap();
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..3 {
                let env = env.clone();
                let stable = stable.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut round = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let i = (t + round) % stable.len();
                        env.with_page(stable[i], |d| {
                            assert!(d.iter().all(|&b| b == 0x40 + i as u8));
                        })
                        .unwrap();
                        round += 1;
                    }
                });
            }
            // Writer thread: allocate, dirty, flush, clear — the full
            // mutation surface — while readers hammer stable pages.
            for _ in 0..20 {
                let p = env.allocate_page().unwrap();
                env.with_page_mut(p, |d| d.fill(0xEE)).unwrap();
                env.flush().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}

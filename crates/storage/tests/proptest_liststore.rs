//! Property tests for the sequential list store: arbitrary interleavings
//! of initial writes and append sessions must read back exactly like a
//! `Vec<Vec<u8>>` model, across page boundaries and reopen cycles.

use proptest::prelude::*;
use xk_storage::{EnvOptions, ListAppender, ListReader, ListWriter, StorageEnv};

fn records() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_then_append_sessions_roundtrip(
        initial in records(),
        sessions in proptest::collection::vec(records(), 0..4),
    ) {
        let env = StorageEnv::in_memory(EnvOptions { page_size: 128, pool_pages: 32 });
        let mut model: Vec<Vec<u8>> = Vec::new();

        let mut w = ListWriter::new(&env);
        for r in &initial {
            w.append(&env, r).unwrap();
            model.push(r.clone());
        }
        let mut handle = w.finish(&env).unwrap();

        for session in &sessions {
            let mut a = ListAppender::open(&env, handle).unwrap();
            for r in session {
                a.append(&env, r).unwrap();
                model.push(r.clone());
            }
            handle = a.finish();
        }

        prop_assert_eq!(handle.entry_count, model.len() as u64);
        let mut reader = ListReader::new(&handle);
        for expect in &model {
            let got = reader.next_record(&env).unwrap();
            prop_assert_eq!(got.as_ref(), Some(expect));
        }
        prop_assert_eq!(reader.next_record(&env).unwrap(), None);

        // A second pass after dropping the cache reads the same bytes.
        env.clear_cache().unwrap();
        let mut reader = ListReader::new(&handle);
        let mut n = 0;
        while let Some(r) = reader.next_record(&env).unwrap() {
            prop_assert_eq!(&r, &model[n]);
            n += 1;
        }
        prop_assert_eq!(n, model.len());
    }
}

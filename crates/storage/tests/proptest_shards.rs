//! Property test for the sharded buffer pool: arbitrary interleavings of
//! page reads and cache drops from several threads — over a fault
//! injector that can fail reads at any moment — must never panic, must
//! surface failures only as typed [`StorageError`]s, and must always
//! return pages byte-identical to a single-shard (unsharded) oracle
//! environment holding the same data.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use xk_storage::{
    EnvOptions, FaultConfig, FaultPager, MemPager, PageId, StorageEnv, StorageError,
};

const PAGE_SIZE: usize = 256;

/// splitmix64: each thread derives its own deterministic op stream from
/// the proptest-provided seed, while the *interleaving* across threads
/// stays up to the scheduler — which is exactly what the test probes.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Allocates `npages` pages in `env` with seeded, per-page contents and
/// flushes them to the backing store. Allocation order is deterministic,
/// so two envs fed the same arguments hold identical page ids and bytes.
fn populate(env: &StorageEnv, npages: usize, seed: u64) -> Vec<PageId> {
    let mut ids = Vec::with_capacity(npages);
    for p in 0..npages {
        let id = env.allocate_page().unwrap();
        let mut rng = seed ^ (p as u64).wrapping_mul(0x9E37_79B9);
        env.with_page_mut(id, |bytes| {
            for b in bytes.iter_mut() {
                *b = splitmix64(&mut rng) as u8;
            }
        })
        .unwrap();
        ids.push(id);
    }
    env.flush().unwrap();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_pool_matches_unsharded_oracle(
        seed in any::<u64>(),
        npages in 4usize..32,
        threads in 2usize..5,
        ops_per_thread in 20usize..120,
    ) {
        // Oracle: pool of 8 pages resolves to a single shard — the
        // pre-sharding behaviour. Subject: pool of 64 pages → 8 shards,
        // small enough that reads constantly evict across shards.
        let oracle = StorageEnv::in_memory(EnvOptions {
            page_size: PAGE_SIZE,
            pool_pages: 8,
        });
        prop_assert_eq!(oracle.shard_count(), 1);

        let fault = FaultPager::new(Box::new(MemPager::new(PAGE_SIZE)), FaultConfig::none());
        let probe = fault.probe();
        let subject = StorageEnv::create_with_pager(Box::new(fault), 64).unwrap();
        prop_assert_eq!(subject.shard_count(), 8);

        let oracle_ids = populate(&oracle, npages, seed);
        let subject_ids = populate(&subject, npages, seed);
        prop_assert_eq!(&oracle_ids, &subject_ids);
        let expected: Vec<Vec<u8>> = oracle_ids
            .iter()
            .map(|id| oracle.read_page_copy(*id).unwrap())
            .collect();

        // Concurrent phase: every thread interleaves page reads, cache
        // drops, and the occasional one-shot read fault armed mid-run.
        let injected = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let subject = &subject;
                let probe = &probe;
                let expected = &expected;
                let ids = &subject_ids;
                let injected = &injected;
                s.spawn(move || {
                    let mut rng = seed ^ (t as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
                    for _ in 0..ops_per_thread {
                        let r = splitmix64(&mut rng);
                        if r.is_multiple_of(13) {
                            // Dropping the cache only writes (dirty pages)
                            // and we never dirty pages here, so it cannot
                            // hit an armed *read* fault.
                            subject.clear_cache().unwrap();
                            continue;
                        }
                        if r.is_multiple_of(17) {
                            probe.arm_read_fault();
                            injected.fetch_add(1, Ordering::Relaxed);
                        }
                        let i = (r % ids.len() as u64) as usize;
                        match subject.with_page(ids[i], |bytes| bytes.to_vec()) {
                            Ok(bytes) => assert_eq!(
                                bytes, expected[i],
                                "page {:?} bytes diverged from the unsharded oracle",
                                ids[i]
                            ),
                            // An injected fault surfaces as a typed I/O
                            // error; anything else is a real defect.
                            Err(StorageError::Io(_)) => {}
                            Err(other) => panic!("unexpected error kind: {other}"),
                        }
                    }
                });
            }
        });

        // Drain faults that were armed but never consumed (every read
        // after the last arm may have been a cache hit), then a sequential
        // cold sweep must read every page back byte-identical.
        let mut budget = injected.load(Ordering::Relaxed) + 1;
        while probe.pending_read_faults() > 0 && budget > 0 {
            subject.clear_cache().unwrap();
            let _ = subject.with_page(subject_ids[0], |_| ());
            budget -= 1;
        }
        prop_assert_eq!(probe.pending_read_faults(), 0);
        subject.clear_cache().unwrap();
        for (i, id) in subject_ids.iter().enumerate() {
            let bytes = subject.read_page_copy(*id).unwrap();
            prop_assert_eq!(&bytes, &expected[i], "post-run sweep of page {:?}", id);
        }
    }
}

//! Loom model of the buffer pool's lock discipline.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p xk-storage --test loom_pool`
//! (or `just test-loom`). Compiles to nothing otherwise.
//!
//! `StorageEnv` orders its locks one way only: the global `write_state`
//! mutex is taken first (flush/commit), then shard mutexes one at a time;
//! read paths take a single shard and never the global lock while holding
//! it. `xk-analyze`'s lock_order pass proves the *code* follows that
//! order; this model proves the *order itself* is deadlock-free under
//! concurrent flushers and readers, and that the inverted order is not —
//! so the discipline the analyzer enforces is load-bearing, not ritual.

#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use loom::thread;

const SHARDS: usize = 4;

struct PoolModel {
    /// One entry per pool shard (`StorageEnv::shards`).
    shards: Vec<Mutex<u64>>,
    /// The global flush/commit lock (`StorageEnv::write_state`).
    global: Mutex<u64>,
}

impl PoolModel {
    fn new() -> Self {
        PoolModel {
            shards: (0..SHARDS).map(|_| Mutex::new(0)).collect(),
            global: Mutex::new(0),
        }
    }

    /// `flush`: global first, then every shard in index order, one at a
    /// time — mirrors `flush_locked`'s per-shard loop.
    fn flush(&self) {
        let mut g = self.global.lock().unwrap();
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            *g += *s;
            *s = 0;
        }
    }

    /// A read path: a single shard, no global lock — mirrors
    /// `with_page` / `fetch`.
    fn touch(&self, page: usize) {
        let mut s = self.shards[page % SHARDS].lock().unwrap();
        *s += 1;
    }

    /// A write path: global, then the page's shard — mirrors the
    /// mutation paths that dirty pages under the write lock.
    fn mutate(&self, page: usize) {
        let mut g = self.global.lock().unwrap();
        let mut s = self.shards[page % SHARDS].lock().unwrap();
        *s += 1;
        *g += 1;
    }
}

/// Flushers, readers, and writers running the documented order complete
/// every explored schedule without tripping the deadlock watchdog.
#[test]
fn global_then_shard_discipline_is_deadlock_free() {
    loom::model(|| {
        let pool = Arc::new(PoolModel::new());
        let mut handles = Vec::new();
        for worker in 0..2 {
            let pool = Arc::clone(&pool);
            handles.push(thread::spawn(move || {
                for page in 0..4 {
                    pool.touch(worker + page);
                }
                pool.mutate(worker);
            }));
        }
        {
            let pool = Arc::clone(&pool);
            handles.push(thread::spawn(move || pool.flush()));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Nothing is lost: every touch/mutate landed in a shard or was
        // swept into the global tally by the flush.
        let drained: u64 = *pool.global.lock().unwrap()
            + pool.shards.iter().map(|s| *s.lock().unwrap()).sum::<u64>();
        assert_eq!(drained, 2 * 4 + 2 + 2); // touches + mutates (+1 global each)
    });
}

/// The inversion `xk-analyze` flags (shard held, then the global lock)
/// deadlocks against a flusher: the watchdog must fire. This is the
/// model-level proof that the lock_order pass guards a real property.
#[test]
#[should_panic(expected = "deadlock suspected")]
fn shard_then_global_inversion_deadlocks() {
    std::env::set_var("XK_LOOM_WATCHDOG_MS", "300");
    std::env::set_var("XK_LOOM_ITERS", "1");
    let pool = Arc::new(PoolModel::new());
    let barrier = Arc::new(std::sync::Barrier::new(2));

    // Inverted worker: shard 0 first, then the global lock.
    let inverted = {
        let (pool, barrier) = (Arc::clone(&pool), Arc::clone(&barrier));
        thread::spawn(move || {
            let _s = pool.shards[0].lock().unwrap();
            barrier.wait();
            let _g = pool.global.lock().unwrap();
        })
    };

    // Flusher holding the global lock, reaching for shard 0: a
    // guaranteed cycle once both sides pass the barrier.
    let _g = pool.global.lock().unwrap();
    barrier.wait();
    let result = pool.shards[0].lock();
    drop(result);
    let _ = inverted.join();
}

//! Property tests: the disk B+tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary interleavings of inserts,
//! deletes, point gets, and left/right-match seeks, and must keep its
//! structural invariants at every step.

use proptest::prelude::*;
use std::collections::BTreeMap;
use xk_storage::{BTree, EnvOptions, StorageEnv};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
    Get(Vec<u8>),
    SeekGe(Vec<u8>),
    SeekLe(Vec<u8>),
}

fn small_key() -> impl Strategy<Value = Vec<u8>> {
    // Short keys from a small alphabet maximize collisions and ordering
    // edge cases (prefix keys, equal keys, empty key).
    proptest::collection::vec(0u8..4, 0..5)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (small_key(), proptest::collection::vec(any::<u8>(), 0..12))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        small_key().prop_map(Op::Remove),
        small_key().prop_map(Op::Get),
        small_key().prop_map(Op::SeekGe),
        small_key().prop_map(Op::SeekLe),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_std_btreemap(ops in proptest::collection::vec(op(), 1..300)) {
        let env = StorageEnv::in_memory(EnvOptions { page_size: 256, pool_pages: 32 });
        let tree = BTree::create(&env, 0).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    let old = tree.insert(&env, k, v).unwrap();
                    prop_assert_eq!(old, model.insert(k.clone(), v.clone()));
                }
                Op::Remove(k) => {
                    let old = tree.remove(&env, k).unwrap();
                    prop_assert_eq!(old, model.remove(k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&env, k).unwrap(), model.get(k).cloned());
                }
                Op::SeekGe(k) => {
                    let got = tree.seek_ge(&env, k).unwrap().read(&env).unwrap();
                    let want = model.range::<Vec<u8>, _>(k.clone()..).next()
                        .map(|(k, v)| (k.clone(), v.clone()));
                    prop_assert_eq!(got, want);
                }
                Op::SeekLe(k) => {
                    let got = tree.seek_le(&env, k).unwrap().read(&env).unwrap();
                    let want = model.range::<Vec<u8>, _>(..=k.clone()).next_back()
                        .map(|(k, v)| (k.clone(), v.clone()));
                    prop_assert_eq!(got, want);
                }
            }
        }
        tree.check_invariants(&env).unwrap();

        // Full forward scan equals the model's ordered contents.
        let mut c = tree.cursor_first(&env).unwrap();
        let mut scanned = Vec::new();
        while let Some(e) = c.read(&env).unwrap() {
            scanned.push(e);
            c.advance(&env).unwrap();
        }
        let expected: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, expected);
    }

    #[test]
    fn btree_bulk_then_drain(keys in proptest::collection::btree_set(
        proptest::collection::vec(any::<u8>(), 0..10), 1..400))
    {
        let env = StorageEnv::in_memory(EnvOptions { page_size: 256, pool_pages: 16 });
        let tree = BTree::create(&env, 0).unwrap();
        for k in &keys {
            tree.insert(&env, k, b"v").unwrap();
        }
        tree.check_invariants(&env).unwrap();
        prop_assert_eq!(tree.len(&env).unwrap(), keys.len() as u64);
        for k in &keys {
            prop_assert_eq!(tree.remove(&env, k).unwrap(), Some(b"v".to_vec()));
        }
        prop_assert!(tree.is_empty(&env).unwrap());
        tree.check_invariants(&env).unwrap();
    }
}

//! Crash-simulation tests: a [`FaultPager`] injects torn writes and I/O
//! failures under real B+tree workloads, and the dirty-flag protocol plus
//! page checksums must turn every crash into a recoverable, *reported*
//! state — never a panic, never a silently half-written index.

use std::path::PathBuf;
use xk_storage::{
    BTree, EnvOptions, FaultConfig, FaultPager, FilePager, StorageEnv, StorageError,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xk-fault-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn faulty_file_env(path: &std::path::Path, config: FaultConfig) -> StorageEnv {
    let pager = FilePager::create(path, 512).unwrap();
    StorageEnv::create_with_pager(Box::new(FaultPager::new(Box::new(pager), config)), 16)
        .unwrap()
}

/// Inserts `n` keys, returning the first error (the workload a crash
/// interrupts).
fn insert_workload(env: &StorageEnv, n: usize) -> xk_storage::Result<()> {
    let tree = BTree::create(env, 0)?;
    for i in 0..n {
        let key = format!("key-{i:05}");
        tree.insert(env, key.as_bytes(), &[i as u8; 24])?;
    }
    env.flush()
}

#[test]
fn torn_write_mid_flush_is_rejected_on_reopen() {
    let dir = temp_dir("torn");
    // Several crash points: early (meta-adjacent) through mid-flush.
    for torn_at in [1u64, 2, 4, 7] {
        let path = dir.join(format!("torn-{torn_at}.db"));
        let env = faulty_file_env(
            &path,
            FaultConfig { torn_write_at: Some(torn_at), seed: torn_at, ..FaultConfig::none() },
        );
        let result = insert_workload(&env, 300);
        assert!(result.is_err(), "torn write at op {torn_at} must surface");
        drop(env); // drop-flush also fails; must not panic

        match StorageEnv::open(&path, EnvOptions { page_size: 512, pool_pages: 16 }).err() {
            Some(
                StorageError::DirtyShutdown
                | StorageError::Corrupt(_)
                | StorageError::ChecksumMismatch { .. },
            ) => {}
            other => panic!("torn file at op {torn_at} accepted or odd error: {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn write_and_sync_failures_propagate_without_panicking() {
    let dir = temp_dir("wfail");
    for (kind, config) in [
        ("write", FaultConfig { fail_write_at: Some(2), ..FaultConfig::none() }),
        ("sync", FaultConfig { fail_sync_at: Some(1), ..FaultConfig::none() }),
    ] {
        let path = dir.join(format!("{kind}.db"));
        let env = faulty_file_env(&path, config);
        let err = insert_workload(&env, 300).unwrap_err();
        assert!(err.to_string().contains("injected"), "{kind}: {err}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn read_failures_surface_as_errors_never_panics() {
    // A tiny pool over a disk whose reads die after the meta fetch:
    // evicted pages cannot come back, and every access must return Err —
    // the B+tree layer must propagate, not unwrap.
    let fault = FaultPager::new(
        Box::new(xk_storage::MemPager::new(512)),
        // Read op 0 is the meta fetch during create.
        FaultConfig { fail_read_at: Some(1), ..FaultConfig::none() },
    );
    let env = StorageEnv::create_with_pager(Box::new(fault), 4).unwrap();
    if let Ok(tree) = BTree::create(&env, 0) {
        let mut saw_error = false;
        for i in 0..300 {
            // Ascending inserts ride the hot rightmost spine, so they may
            // well succeed from the pool alone; either way, no panics.
            let key = format!("key-{i:05}");
            saw_error |= tree.insert(&env, key.as_bytes(), &[7u8; 24]).is_err();
        }
        // Probing the *early* keys descends into long-evicted leaves,
        // which need the dead disk — these must error, not panic.
        for i in 0..300 {
            let key = format!("key-{i:05}");
            saw_error |= tree.get(&env, key.as_bytes()).is_err();
        }
        assert!(saw_error, "a dead disk must surface read errors");
    }
}

#[test]
fn identical_seeds_crash_identically() {
    let dir = temp_dir("determinism");
    let run = |tag: &str| -> (String, u64) {
        let path = dir.join(format!("det-{tag}.db"));
        let pager = FilePager::create(&path, 512).unwrap();
        let fault = FaultPager::new(
            Box::new(pager),
            FaultConfig { torn_write_at: Some(5), seed: 42, ..FaultConfig::none() },
        );
        let env = StorageEnv::create_with_pager(Box::new(fault), 16).unwrap();
        let err = insert_workload(&env, 300).unwrap_err().to_string();
        drop(env);
        let len = std::fs::metadata(&path).unwrap().len();
        (err, len)
    };
    let (err_a, len_a) = run("a");
    let (err_b, len_b) = run("b");
    assert_eq!(err_a, err_b, "same seed, same failure point");
    assert_eq!(len_a, len_b, "same seed, same on-disk aftermath");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn clean_shutdown_through_fault_pager_reopens_fine() {
    let dir = temp_dir("clean");
    let path = dir.join("clean.db");
    {
        let env = faulty_file_env(&path, FaultConfig::none());
        insert_workload(&env, 300).unwrap();
    }
    let env = StorageEnv::open(&path, EnvOptions { page_size: 512, pool_pages: 16 })
        .expect("cleanly flushed file reopens");
    let tree = BTree::open(&env, 0).unwrap();
    assert_eq!(tree.get(&env, b"key-00042").unwrap(), Some(vec![42u8; 24]));
    std::fs::remove_dir_all(&dir).unwrap();
}

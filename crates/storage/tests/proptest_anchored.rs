//! Differential property test for anchored B+tree cursors: on random key
//! sets (both insert-built and bulk-loaded trees) and random probe
//! sequences, `seek_ge_anchored`/`seek_le_anchored` through a reused
//! [`BTreeCursor`] must return exactly what the stateless
//! `seek_ge`/`seek_le` return — including across interleaved inserts,
//! which must invalidate the pinned path rather than serve stale answers.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use xk_storage::{BTree, BTreeCursor, EnvOptions, StorageEnv};

fn small_key() -> impl Strategy<Value = Vec<u8>> {
    // Short keys from a small alphabet maximize collisions, prefix pairs,
    // and probes that fall before/after every stored key.
    proptest::collection::vec(0u8..5, 0..5)
}

#[derive(Debug, Clone)]
enum Probe {
    Ge(Vec<u8>),
    Le(Vec<u8>),
    /// Mutate the tree mid-sequence: the anchor must notice.
    Insert(Vec<u8>),
}

fn probe() -> impl Strategy<Value = Probe> {
    prop_oneof![
        small_key().prop_map(Probe::Ge),
        small_key().prop_map(Probe::Le),
        small_key().prop_map(Probe::Ge),
        small_key().prop_map(Probe::Le),
        small_key().prop_map(Probe::Insert),
    ]
}

fn mem_env() -> StorageEnv {
    StorageEnv::in_memory(EnvOptions { page_size: 256, pool_pages: 64 })
}

fn run_differential(
    env: &StorageEnv,
    tree: &BTree,
    probes: Vec<Probe>,
) -> std::result::Result<(), TestCaseError> {
    let mut anchor = BTreeCursor::new();
    for p in probes {
        match p {
            Probe::Ge(k) => {
                let fresh = tree.seek_ge(env, &k).unwrap().read(env).unwrap();
                let anchored =
                    tree.seek_ge_anchored(env, &mut anchor, &k).unwrap().read(env).unwrap();
                prop_assert_eq!(fresh, anchored, "seek_ge({:?})", k);
            }
            Probe::Le(k) => {
                let fresh = tree.seek_le(env, &k).unwrap().read(env).unwrap();
                let anchored =
                    tree.seek_le_anchored(env, &mut anchor, &k).unwrap().read(env).unwrap();
                prop_assert_eq!(fresh, anchored, "seek_le({:?})", k);
            }
            Probe::Insert(k) => {
                tree.insert(env, &k, b"mid-sequence").unwrap();
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn anchored_equals_fresh_on_insert_built_trees(
        keys in proptest::collection::vec(small_key(), 0..120),
        probes in proptest::collection::vec(probe(), 1..150),
    ) {
        let env = mem_env();
        let tree = BTree::create(&env, 0).unwrap();
        for k in &keys {
            tree.insert(&env, k, b"v").unwrap();
        }
        run_differential(&env, &tree, probes)?;
    }

    #[test]
    fn anchored_equals_fresh_on_bulk_loaded_trees(
        keys in proptest::collection::btree_set(small_key(), 0..120),
        probes in proptest::collection::vec(probe(), 1..150),
    ) {
        let env = mem_env();
        let entries: Vec<(Vec<u8>, Vec<u8>)> =
            keys.into_iter().map(|k| (k, b"v".to_vec())).collect();
        let tree = BTree::bulk_load(&env, 0, entries).unwrap();
        run_differential(&env, &tree, probes)?;
    }

    #[test]
    fn anchored_equals_fresh_on_sorted_probe_sweeps(
        keys in proptest::collection::btree_set(small_key(), 1..120),
        probes in proptest::collection::vec(small_key(), 1..150),
    ) {
        // The engine's access pattern: probes in ascending order over a
        // static tree (queries never mutate). Both directions per probe,
        // sharing one anchor, exactly like a DiskRankedList's lm/rm pair.
        let env = mem_env();
        let entries: Vec<(Vec<u8>, Vec<u8>)> =
            keys.into_iter().map(|k| (k, Vec::new())).collect();
        let tree = BTree::bulk_load(&env, 0, entries).unwrap();
        let mut sorted = probes;
        sorted.sort();
        let mut anchor = BTreeCursor::new();
        for k in sorted {
            let fresh = tree.seek_ge(&env, &k).unwrap().read(&env).unwrap();
            let anchored =
                tree.seek_ge_anchored(&env, &mut anchor, &k).unwrap().read(&env).unwrap();
            prop_assert_eq!(fresh, anchored, "seek_ge({:?})", k);
            let fresh = tree.seek_le(&env, &k).unwrap().read(&env).unwrap();
            let anchored =
                tree.seek_le_anchored(&env, &mut anchor, &k).unwrap().read(&env).unwrap();
            prop_assert_eq!(fresh, anchored, "seek_le({:?})", k);
        }
    }
}

//! Regression tests for corruption that passes checksums.
//!
//! The page checksum (PR 1) catches torn writes and bit rot, but a page
//! can be internally inconsistent while checksum-valid: a buggy build, a
//! stray write through the pool, or a mangled offset directory. These
//! tests corrupt pages *through* the buffer pool (so checksums are
//! restamped and stay valid) and require every hot-path read to report
//! `StorageError::Corrupt` instead of panicking or silently truncating.

use xk_storage::{
    BTree, EnvOptions, ListReader, ListWriter, PageId, StorageEnv, StorageError,
};

fn mem_env() -> StorageEnv {
    StorageEnv::in_memory(EnvOptions { page_size: 512, pool_pages: 64 })
}

fn small_tree(env: &StorageEnv) -> (BTree, PageId) {
    let tree = BTree::create(env, 0).unwrap();
    for i in 0..8u8 {
        tree.insert(env, format!("key-{i}").as_bytes(), &[i; 8]).unwrap();
    }
    let root = env.root_slot(0).unwrap().expect("tree has a root");
    (tree, root)
}

/// Every mangle keeps the page checksum-consistent (the pool restamps on
/// write-back) but breaks the slotted-page invariants the raw accessors
/// rely on. Reads must error, not panic.
#[test]
fn mangled_btree_pages_error_instead_of_panicking() {
    type Mangle = fn(&mut [u8]);
    let mangles: &[(&str, Mangle)] = &[
        ("count header inflated", |p| {
            p[1..3].copy_from_slice(&u16::MAX.to_le_bytes());
        }),
        ("offset entries past page end", |p| {
            for i in 0..8 {
                p[11 + 2 * i..13 + 2 * i].copy_from_slice(&0xFFF0u16.to_le_bytes());
            }
        }),
        ("entry key lengths overrun page", |p| {
            // Point every offset at the last two in-page bytes so the
            // klen read succeeds but the key range cannot fit.
            let off = (p.len() - 2) as u16;
            for i in 0..8 {
                p[11 + 2 * i..13 + 2 * i].copy_from_slice(&off.to_le_bytes());
            }
            let at = p.len() - 2;
            p[at..].copy_from_slice(&u16::MAX.to_le_bytes());
        }),
        ("node type byte unknown", |p| p[0] = 0xEE),
    ];
    for (what, mangle) in mangles {
        let env = mem_env();
        let (tree, root) = small_tree(&env);
        env.with_page_mut(root, *mangle).unwrap();

        let got = tree.get(&env, b"key-3");
        assert!(
            matches!(got, Err(StorageError::Corrupt(_))),
            "{what}: get returned {got:?}"
        );
        let got = tree.seek_ge(&env, b"key-0");
        assert!(got.is_err(), "{what}: seek_ge returned {got:?}");
        let got = tree.seek_le(&env, b"key-9");
        assert!(got.is_err(), "{what}: seek_le returned {got:?}");
    }
}

fn list_with_records(env: &StorageEnv, n: usize) -> xk_storage::ListHandle {
    let mut w = ListWriter::new(env);
    for i in 0..n {
        w.append(env, format!("record-{i:04}-padding-padding").as_bytes()).unwrap();
    }
    w.finish(env).unwrap()
}

/// A chain that ends before `entry_count` records were read is a
/// truncated list; reporting it as a clean end-of-list would silently
/// drop matches from keyword queries.
#[test]
fn truncated_list_chain_is_corrupt_not_short() {
    let env = mem_env();
    // ~25 bytes per record, 506-byte payload pages: several pages.
    let handle = list_with_records(&env, 100);

    // Sever the chain after the head page.
    env.with_page_mut(handle.head, |p| {
        p[..4].copy_from_slice(&PageId::NONE_RAW.to_le_bytes());
    })
    .unwrap();

    let mut reader = ListReader::new(&handle);
    let mut read = 0usize;
    let err = loop {
        match reader.next_record(&env) {
            Ok(Some(_)) => read += 1,
            Ok(None) => panic!("truncated chain read as complete after {read} records"),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, StorageError::Corrupt(_)), "got {err:?}");
    assert!(read < 100, "severed chain cannot yield all records");
}

/// Same defect from the other side: an entry count larger than the chain
/// actually holds (handle/chain mismatch).
#[test]
fn overlong_entry_count_is_corrupt_not_short() {
    let env = mem_env();
    let mut handle = list_with_records(&env, 10);
    handle.entry_count += 1;

    let mut reader = ListReader::new(&handle);
    let mut read = 0usize;
    let err = loop {
        match reader.next_record(&env) {
            Ok(Some(_)) => read += 1,
            Ok(None) => panic!("short chain read as complete after {read} records"),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, StorageError::Corrupt(_)), "got {err:?}");
    assert_eq!(read, 10, "the real records still read back first");
}

//! Crash-injection sweep over the durable write path.
//!
//! One deterministic transactional workload runs against fault-wrapped
//! in-memory pagers. The sweep then re-runs it, killing the process
//! model at *every* database sync point, every WAL sync point, and with
//! a torn write at every WAL write index after setup. After each crash,
//! [`xk_storage::recover`] replays the log and the resulting database
//! must equal the state after some *prefix* of the workload's
//! transactions — never a mix — and that prefix must cover every
//! transaction whose durability was confirmed before the crash.
//! Recovery is also run twice each time: the second pass must be a
//! byte-identical no-op (replay is idempotent).
//!
//! Crashes *during setup* (before the database file and WAL exist) are
//! out of scope: that contract is "recreate from scratch", handled at
//! the engine layer, not "recover".

use std::sync::Arc;
use xk_storage::fault::{FaultConfig, FaultPager};
use xk_storage::recovery::recover;
use xk_storage::wal::Wal;
use xk_storage::{EnvOptions, MemPager, PageId, Pager, StorageEnv, StorageError};

const PAGE: usize = 256;
const NPAGES: usize = 6;
const NTXNS: u8 = 8;

/// Everything the sweep needs to know about one (possibly crashed) run.
struct RunOutcome {
    db: Arc<MemPager>,
    wal: Arc<MemPager>,
    /// Transactions whose `sync_wal` returned Ok before the crash.
    durable: usize,
    crashed: bool,
    db_setup_syncs: u64,
    wal_setup_syncs: u64,
    wal_setup_writes: u64,
    db_syncs: u64,
    wal_syncs: u64,
    wal_writes: u64,
}

/// Expected page fills after each transaction prefix (index = number of
/// transactions applied; pages are `PageId(1..=NPAGES)`).
fn model_states() -> Vec<[u8; NPAGES]> {
    let mut states = vec![[0u8; NPAGES]];
    let mut cur = [1u8; NPAGES]; // txn 1 fills every page with 1
    states.push(cur);
    for t in 2..=NTXNS {
        for off in 0..3 {
            cur[(t as usize + off) % NPAGES] = t;
        }
        states.push(cur);
    }
    states
}

/// The scripted workload: one allocating transaction, then seven
/// three-page overwrite transactions, with a full checkpoint (flush +
/// WAL reset) in the middle and at the end. Every step uses `?` so the
/// first injected failure stops the run exactly where a crash would.
fn steps(env: &StorageEnv, durable: &mut usize) -> xk_storage::Result<()> {
    env.begin_txn()?;
    let pages: Vec<PageId> = (0..NPAGES)
        .map(|_| env.allocate_page())
        .collect::<xk_storage::Result<_>>()?;
    for &p in &pages {
        env.with_page_mut(p, |d| d.fill(1))?;
    }
    env.commit_txn()?;
    env.sync_wal()?;
    *durable = 1;
    for t in 2..=NTXNS {
        env.begin_txn()?;
        for off in 0..3 {
            let p = pages[(t as usize + off) % NPAGES];
            env.with_page_mut(p, |d| d.fill(t))?;
        }
        env.commit_txn()?;
        env.sync_wal()?;
        *durable = t as usize;
        if t == 5 {
            env.flush()?; // mid-run checkpoint: retires the log
        }
    }
    env.flush()?;
    Ok(())
}

fn run_workload(db_cfg: FaultConfig, wal_cfg: FaultConfig) -> RunOutcome {
    let db = Arc::new(MemPager::new(PAGE));
    let wal_mem = Arc::new(MemPager::new(PAGE));
    let db_fault = FaultPager::new(Box::new(Arc::clone(&db)), db_cfg);
    let wal_fault = FaultPager::new(Box::new(Arc::clone(&wal_mem)), wal_cfg);
    let db_probe = db_fault.probe();
    let wal_probe = wal_fault.probe();

    let mut out = RunOutcome {
        db,
        wal: wal_mem,
        durable: 0,
        crashed: true,
        db_setup_syncs: 0,
        wal_setup_syncs: 0,
        wal_setup_writes: 0,
        db_syncs: 0,
        wal_syncs: 0,
        wal_writes: 0,
    };
    let finish = |out: &mut RunOutcome| {
        out.db_syncs = db_probe.syncs();
        out.wal_syncs = wal_probe.syncs();
        out.wal_writes = wal_probe.writes();
    };

    // Setup: database file, initial checkpoint, WAL. Sweeps start after
    // this point (see module docs).
    let mut env = match StorageEnv::create_with_pager(Box::new(db_fault), 16) {
        Ok(env) => env,
        Err(_) => {
            finish(&mut out);
            return out;
        }
    };
    let setup = (|| -> xk_storage::Result<()> {
        env.flush()?;
        let wal = Wal::create(Arc::new(wal_fault) as Arc<dyn Pager>, PAGE as u32)?;
        env.attach_wal(wal)?;
        Ok(())
    })();
    if setup.is_err() {
        finish(&mut out);
        std::mem::forget(env);
        return out;
    }
    out.db_setup_syncs = db_probe.syncs();
    out.wal_setup_syncs = wal_probe.syncs();
    out.wal_setup_writes = wal_probe.writes();

    out.crashed = steps(&env, &mut out.durable).is_err();
    finish(&mut out);
    // Crashed or not, the env must not run its Drop flush: a real crash
    // gets no destructors, and the success path flushed explicitly.
    std::mem::forget(env);
    out
}

fn dump(pager: &MemPager) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut buf = vec![0u8; pager.page_size()];
    for i in 0..pager.page_count() {
        pager.read_page(PageId(i), &mut buf).unwrap();
        bytes.extend_from_slice(&buf);
    }
    bytes
}

/// Recovers the crashed pagers (twice — the second pass must change
/// nothing) and checks the database equals a transaction prefix that
/// covers everything confirmed durable.
fn verify_recovery(out: &RunOutcome, label: &str) {
    recover(&*out.db, &*out.wal).unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    let first = dump(&out.db);
    let report = recover(&*out.db, &*out.wal)
        .unwrap_or_else(|e| panic!("{label}: second recovery failed: {e}"));
    assert_eq!(first, dump(&out.db), "{label}: replay must be idempotent");
    let _ = report;

    let env = StorageEnv::open_with_pager(Box::new(Arc::clone(&out.db)), 16)
        .unwrap_or_else(|e| panic!("{label}: post-recovery open failed: {e}"));
    let states = model_states();
    if (env.page_count() as usize) < 1 + NPAGES {
        // The allocating transaction never became durable.
        assert_eq!(out.durable, 0, "{label}: durable txn lost with no data pages");
        return;
    }
    let mut observed = [0u8; NPAGES];
    for (i, slot) in observed.iter_mut().enumerate() {
        *slot = env
            .with_page(PageId(i as u32 + 1), |d| {
                let fill = d[0];
                assert!(d.iter().all(|&b| b == fill), "{label}: torn page {}", i + 1);
                fill
            })
            .unwrap_or_else(|e| panic!("{label}: read of page {} failed: {e}", i + 1));
    }
    let prefix = states
        .iter()
        .position(|s| *s == observed)
        .unwrap_or_else(|| panic!("{label}: state {observed:?} matches no transaction prefix"));
    assert!(
        prefix >= out.durable,
        "{label}: confirmed-durable prefix {} lost, recovered only {prefix}",
        out.durable
    );
}

#[test]
fn baseline_workload_is_clean() {
    let out = run_workload(FaultConfig::none(), FaultConfig::none());
    assert!(!out.crashed, "no faults, no crash");
    assert_eq!(out.durable, NTXNS as usize);
    // A clean shutdown needs no recovery and reopens directly.
    let env = StorageEnv::open_with_pager(Box::new(Arc::clone(&out.db)), 16).unwrap();
    let last = *model_states().last().unwrap();
    for (i, &fill) in last.iter().enumerate() {
        assert_eq!(env.with_page(PageId(i as u32 + 1), |d| d[0]).unwrap(), fill);
    }
    // The final checkpoint retired the log.
    let scan = Wal::scan(&*out.wal).unwrap().expect("valid log");
    assert!(scan.committed.is_empty());
}

#[test]
fn crash_at_every_wal_sync_point_recovers_a_durable_prefix() {
    let baseline = run_workload(FaultConfig::none(), FaultConfig::none());
    assert!(!baseline.crashed);
    assert!(
        baseline.wal_syncs - baseline.wal_setup_syncs >= NTXNS as u64,
        "sweep degenerated: {} WAL sync points after setup",
        baseline.wal_syncs - baseline.wal_setup_syncs
    );
    for k in baseline.wal_setup_syncs..baseline.wal_syncs {
        let out = run_workload(
            FaultConfig::none(),
            FaultConfig { fail_sync_at: Some(k), ..FaultConfig::none() },
        );
        assert!(out.crashed, "wal sync {k} of {} must crash the run", baseline.wal_syncs);
        verify_recovery(&out, &format!("wal sync crash at {k}"));
    }
}

#[test]
fn crash_at_every_db_sync_point_recovers_a_durable_prefix() {
    let baseline = run_workload(FaultConfig::none(), FaultConfig::none());
    assert!(!baseline.crashed);
    assert!(
        baseline.db_syncs - baseline.db_setup_syncs >= 4,
        "sweep degenerated: {} db sync points after setup",
        baseline.db_syncs - baseline.db_setup_syncs
    );
    for k in baseline.db_setup_syncs..baseline.db_syncs {
        let out = run_workload(
            FaultConfig { fail_sync_at: Some(k), ..FaultConfig::none() },
            FaultConfig::none(),
        );
        assert!(out.crashed, "db sync {k} of {} must crash the run", baseline.db_syncs);
        verify_recovery(&out, &format!("db sync crash at {k}"));
    }
}

#[test]
fn torn_wal_write_at_every_index_truncates_to_a_durable_prefix() {
    let baseline = run_workload(FaultConfig::none(), FaultConfig::none());
    assert!(!baseline.crashed);
    assert!(
        baseline.wal_writes - baseline.wal_setup_writes >= NTXNS as u64,
        "sweep degenerated: {} WAL write points after setup",
        baseline.wal_writes - baseline.wal_setup_writes
    );
    for k in baseline.wal_setup_writes..baseline.wal_writes {
        let out = run_workload(
            FaultConfig::none(),
            FaultConfig { torn_write_at: Some(k), seed: 0xC0FFEE ^ k, ..FaultConfig::none() },
        );
        assert!(out.crashed, "torn wal write {k} of {} must crash the run", baseline.wal_writes);
        verify_recovery(&out, &format!("torn wal write at {k}"));
    }
}

#[test]
fn dirty_db_with_missing_wal_is_refused() {
    // A dirty database whose WAL vanished cannot be silently accepted.
    let out = run_workload(
        FaultConfig::none(),
        FaultConfig { fail_sync_at: Some(4), ..FaultConfig::none() },
    );
    assert!(out.crashed);
    let empty = MemPager::new(PAGE);
    match recover(&*out.db, &empty) {
        Err(StorageError::Corrupt(msg)) => {
            assert!(msg.contains("no write-ahead log"), "unexpected message: {msg}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn recovered_env_accepts_new_durable_transactions() {
    // Crash mid-run, recover, then continue with a fresh WAL generation:
    // the normal restart path the engine will take.
    let out = run_workload(
        FaultConfig::none(),
        FaultConfig { fail_sync_at: Some(6), ..FaultConfig::none() },
    );
    assert!(out.crashed);
    recover(&*out.db, &*out.wal).unwrap();
    let mut env = StorageEnv::open_with_pager(
        Box::new(Arc::clone(&out.db)),
        EnvOptions::default().pool_pages,
    )
    .unwrap();
    let wal = Wal::open_or_reinit(Arc::clone(&out.wal) as Arc<dyn Pager>, PAGE as u32).unwrap();
    env.attach_wal(wal).unwrap();
    env.begin_txn().unwrap();
    let p = env.allocate_page().unwrap();
    env.with_page_mut(p, |d| d.fill(0xEE)).unwrap();
    let commit = env.commit_txn().unwrap();
    env.sync_wal().unwrap();
    env.wait_wal_durable(commit.lsn).unwrap();
    env.flush().unwrap();
    assert_eq!(env.with_page(p, |d| d[0]).unwrap(), 0xEE);
}

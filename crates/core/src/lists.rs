//! Keyword-list abstractions.
//!
//! The paper's algorithms access keyword lists in two ways:
//!
//! * **indexed** — the left/right match operations `lm(v, S)` / `rm(v, S)`
//!   (Indexed Lookup Eager, all-LCA): [`RankedList`];
//! * **sequential** — front-to-back streaming (Scan Eager, Stack, and the
//!   `S_1` iteration of every eager algorithm): [`StreamList`].
//!
//! [`MemList`] implements both over an in-memory sorted `Vec<Dewey>`.
//! Disk-backed implementations live in the `xksearch` crate, adapting the
//! B+tree (`seek_ge`/`seek_le`) and the sequential list store.

use xk_xmltree::Dewey;

/// Indexed access to a keyword list sorted by Dewey id.
pub trait RankedList {
    /// Number of nodes in the list (the paper's `|S|`).
    fn len(&self) -> u64;

    /// True iff the list has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The paper's **right match** `rm(v, S)`: the node of `S` with the
    /// smallest id greater than or equal to `v`, or `None`.
    fn rm(&mut self, v: &Dewey) -> Option<Dewey>;

    /// The paper's **left match** `lm(v, S)`: the node of `S` with the
    /// biggest id less than or equal to `v`, or `None`.
    fn lm(&mut self, v: &Dewey) -> Option<Dewey>;
}

/// Sequential front-to-back access to a keyword list sorted by Dewey id.
pub trait StreamList {
    /// Number of nodes in the list.
    fn len(&self) -> u64;

    /// True iff the list has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets the stream to the beginning.
    fn rewind(&mut self);

    /// The next node in id order, or `None` at the end.
    fn next_node(&mut self) -> Option<Dewey>;
}

impl<L: RankedList + ?Sized> RankedList for &mut L {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn rm(&mut self, v: &Dewey) -> Option<Dewey> {
        (**self).rm(v)
    }

    fn lm(&mut self, v: &Dewey) -> Option<Dewey> {
        (**self).lm(v)
    }
}

impl<L: StreamList + ?Sized> StreamList for &mut L {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn rewind(&mut self) {
        (**self).rewind()
    }

    fn next_node(&mut self) -> Option<Dewey> {
        (**self).next_node()
    }
}

/// An in-memory keyword list: a sorted, duplicate-free `Vec<Dewey>`.
#[derive(Debug, Clone, Default)]
pub struct MemList {
    nodes: Vec<Dewey>,
    pos: usize,
}

impl MemList {
    /// Builds a list from nodes in any order; sorts and deduplicates.
    pub fn new(mut nodes: Vec<Dewey>) -> MemList {
        nodes.sort();
        nodes.dedup();
        MemList { nodes, pos: 0 }
    }

    /// Builds a list from nodes already sorted and duplicate-free.
    pub fn from_sorted(nodes: Vec<Dewey>) -> MemList {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes must be strictly sorted");
        MemList { nodes, pos: 0 }
    }

    /// The underlying sorted nodes.
    pub fn nodes(&self) -> &[Dewey] {
        &self.nodes
    }
}

impl RankedList for MemList {
    fn len(&self) -> u64 {
        self.nodes.len() as u64
    }

    fn rm(&mut self, v: &Dewey) -> Option<Dewey> {
        let idx = self.nodes.partition_point(|n| n < v);
        self.nodes.get(idx).cloned()
    }

    fn lm(&mut self, v: &Dewey) -> Option<Dewey> {
        let idx = self.nodes.partition_point(|n| n <= v);
        idx.checked_sub(1).and_then(|i| self.nodes.get(i)).cloned()
    }
}

impl StreamList for MemList {
    fn len(&self) -> u64 {
        self.nodes.len() as u64
    }

    fn rewind(&mut self) {
        self.pos = 0;
    }

    fn next_node(&mut self) -> Option<Dewey> {
        let n = self.nodes.get(self.pos).cloned();
        if n.is_some() {
            self.pos += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn list(items: &[&str]) -> MemList {
        MemList::new(items.iter().map(|s| d(s)).collect())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let l = list(&["0.2", "0.1", "0.2", "0"]);
        let ids: Vec<String> = l.nodes().iter().map(|n| n.to_string()).collect();
        assert_eq!(ids, ["0", "0.1", "0.2"]);
    }

    #[test]
    fn rm_and_lm() {
        let mut l = list(&["0.1", "0.3", "0.5"]);
        assert_eq!(l.rm(&d("0.3")), Some(d("0.3"))); // exact
        assert_eq!(l.lm(&d("0.3")), Some(d("0.3")));
        assert_eq!(l.rm(&d("0.2")), Some(d("0.3"))); // between
        assert_eq!(l.lm(&d("0.2")), Some(d("0.1")));
        assert_eq!(l.rm(&d("0.6")), None); // past the end
        assert_eq!(l.lm(&d("0.6")), Some(d("0.5")));
        assert_eq!(l.rm(&d("0.0")), Some(d("0.1"))); // before the start
        assert_eq!(l.lm(&d("0.0")), None);
    }

    #[test]
    fn lm_rm_with_ancestor_ids() {
        // 0.1 < 0.1.0 in preorder; matches respect that.
        let mut l = list(&["0.1", "0.1.0.2", "0.2"]);
        assert_eq!(l.rm(&d("0.1.0")), Some(d("0.1.0.2")));
        assert_eq!(l.lm(&d("0.1.0")), Some(d("0.1")));
    }

    #[test]
    fn stream_iterates_in_order_and_rewinds() {
        let mut l = list(&["0.2", "0.1"]);
        assert_eq!(l.next_node(), Some(d("0.1")));
        assert_eq!(l.next_node(), Some(d("0.2")));
        assert_eq!(l.next_node(), None);
        l.rewind();
        assert_eq!(l.next_node(), Some(d("0.1")));
    }

    #[test]
    fn empty_list() {
        let mut l = MemList::new(vec![]);
        assert!(RankedList::is_empty(&l));
        assert_eq!(l.rm(&d("0")), None);
        assert_eq!(l.lm(&d("0")), None);
        assert_eq!(l.next_node(), None);
    }
}

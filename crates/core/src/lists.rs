//! Keyword-list abstractions.
//!
//! The paper's algorithms access keyword lists in two ways:
//!
//! * **indexed** — the left/right match operations `lm(v, S)` / `rm(v, S)`
//!   (Indexed Lookup Eager, all-LCA): [`RankedList`];
//! * **sequential** — front-to-back streaming (Scan Eager, Stack, and the
//!   `S_1` iteration of every eager algorithm): [`StreamList`].
//!
//! [`MemList`] implements both over an in-memory sorted `Vec<Dewey>`.
//! Disk-backed implementations live in the `xksearch` crate, adapting the
//! B+tree (`seek_ge`/`seek_le`) and the sequential list store.

use xk_xmltree::Dewey;

/// Indexed access to a keyword list sorted by Dewey id.
pub trait RankedList {
    /// Number of nodes in the list (the paper's `|S|`).
    fn len(&self) -> u64;

    /// True iff the list has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The paper's **right match** `rm(v, S)`: the node of `S` with the
    /// smallest id greater than or equal to `v`, or `None`.
    fn rm(&mut self, v: &Dewey) -> Option<Dewey>;

    /// The paper's **left match** `lm(v, S)`: the node of `S` with the
    /// biggest id less than or equal to `v`, or `None`.
    fn lm(&mut self, v: &Dewey) -> Option<Dewey>;
}

/// Sequential front-to-back access to a keyword list sorted by Dewey id.
pub trait StreamList {
    /// Number of nodes in the list.
    fn len(&self) -> u64;

    /// True iff the list has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets the stream to the beginning.
    fn rewind(&mut self);

    /// The next node in id order, or `None` at the end.
    fn next_node(&mut self) -> Option<Dewey>;
}

impl<L: RankedList + ?Sized> RankedList for &mut L {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn rm(&mut self, v: &Dewey) -> Option<Dewey> {
        (**self).rm(v)
    }

    fn lm(&mut self, v: &Dewey) -> Option<Dewey> {
        (**self).lm(v)
    }
}

impl<L: StreamList + ?Sized> StreamList for &mut L {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn rewind(&mut self) {
        (**self).rewind()
    }

    fn next_node(&mut self) -> Option<Dewey> {
        (**self).next_node()
    }
}

impl<L: RankedList + ?Sized> RankedList for Box<L> {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn rm(&mut self, v: &Dewey) -> Option<Dewey> {
        (**self).rm(v)
    }

    fn lm(&mut self, v: &Dewey) -> Option<Dewey> {
        (**self).lm(v)
    }
}

impl<L: StreamList + ?Sized> StreamList for Box<L> {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn rewind(&mut self) {
        (**self).rewind()
    }

    fn next_node(&mut self) -> Option<Dewey> {
        (**self).next_node()
    }
}

/// An in-memory keyword list: a sorted, duplicate-free `Vec<Dewey>`.
#[derive(Debug, Clone, Default)]
pub struct MemList {
    nodes: Vec<Dewey>,
    pos: usize,
}

impl MemList {
    /// Builds a list from nodes in any order; sorts and deduplicates.
    pub fn new(mut nodes: Vec<Dewey>) -> MemList {
        nodes.sort();
        nodes.dedup();
        MemList { nodes, pos: 0 }
    }

    /// Builds a list from nodes already sorted and duplicate-free.
    pub fn from_sorted(nodes: Vec<Dewey>) -> MemList {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes must be strictly sorted");
        MemList { nodes, pos: 0 }
    }

    /// The underlying sorted nodes.
    pub fn nodes(&self) -> &[Dewey] {
        &self.nodes
    }
}

impl RankedList for MemList {
    fn len(&self) -> u64 {
        self.nodes.len() as u64
    }

    fn rm(&mut self, v: &Dewey) -> Option<Dewey> {
        let idx = self.nodes.partition_point(|n| n < v);
        self.nodes.get(idx).cloned()
    }

    fn lm(&mut self, v: &Dewey) -> Option<Dewey> {
        let idx = self.nodes.partition_point(|n| n <= v);
        idx.checked_sub(1).and_then(|i| self.nodes.get(i)).cloned()
    }
}

impl StreamList for MemList {
    fn len(&self) -> u64 {
        self.nodes.len() as u64
    }

    fn rewind(&mut self) {
        self.pos = 0;
    }

    fn next_node(&mut self) -> Option<Dewey> {
        let n = self.nodes.get(self.pos).cloned();
        if n.is_some() {
            self.pos += 1;
        }
        n
    }
}

/// A [`RankedList`] over several disjoint, time-ordered parts of one
/// keyword's postings — the shape a segment store produces, where every
/// id in part `i` is smaller than every id in part `i + 1` (the engine's
/// tail-append invariant). Each part carries its minimum id, so a probe
/// binary-searches the minima and consults **at most one** part:
///
/// * `rm(v)` — the candidate part is the last one whose min is `<= v`;
///   if it has no id `>= v`, the answer is the *next* part's min,
///   available without touching that part at all.
/// * `lm(v)` — the candidate part is guaranteed to contain the answer
///   (its min qualifies).
pub struct ChainedRankedList {
    parts: Vec<(Dewey, Box<dyn RankedList>)>,
    total: u64,
}

impl ChainedRankedList {
    /// Chains `parts`, each tagged with its minimum id. Parts must be
    /// non-empty, with strictly ascending minima and disjoint ranges.
    pub fn new(parts: Vec<(Dewey, Box<dyn RankedList>)>) -> ChainedRankedList {
        debug_assert!(
            parts.windows(2).all(|w| w[0].0 < w[1].0),
            "chained parts must have ascending minima"
        );
        let total = parts.iter().map(|(_, p)| p.len()).sum();
        ChainedRankedList { parts, total }
    }
}

impl RankedList for ChainedRankedList {
    fn len(&self) -> u64 {
        self.total
    }

    fn rm(&mut self, v: &Dewey) -> Option<Dewey> {
        let idx = self.parts.partition_point(|(min, _)| min <= v);
        if idx == 0 {
            // v precedes every part: the global minimum answers.
            return self.parts.first().map(|(min, _)| min.clone());
        }
        // xk-analyze: allow(panic_path, reason = "partition_point returned idx > 0, so idx - 1 indexes within parts")
        if let Some(n) = self.parts[idx - 1].1.rm(v) {
            return Some(n);
        }
        self.parts.get(idx).map(|(min, _)| min.clone())
    }

    fn lm(&mut self, v: &Dewey) -> Option<Dewey> {
        let idx = self.parts.partition_point(|(min, _)| min <= v);
        if idx == 0 {
            return None;
        }
        // xk-analyze: allow(panic_path, reason = "partition_point returned idx > 0, so idx - 1 indexes within parts")
        self.parts[idx - 1].1.lm(v)
    }
}

/// A [`StreamList`] concatenating several parts front to back (same
/// disjoint time-ordered shape as [`ChainedRankedList`]).
pub struct ChainedStreamList {
    parts: Vec<Box<dyn StreamList>>,
    cur: usize,
    total: u64,
}

impl ChainedStreamList {
    /// Chains `parts` in id order.
    pub fn new(parts: Vec<Box<dyn StreamList>>) -> ChainedStreamList {
        let total = parts.iter().map(|p| p.len()).sum();
        ChainedStreamList { parts, cur: 0, total }
    }
}

impl StreamList for ChainedStreamList {
    fn len(&self) -> u64 {
        self.total
    }

    fn rewind(&mut self) {
        for p in &mut self.parts {
            p.rewind();
        }
        self.cur = 0;
    }

    fn next_node(&mut self) -> Option<Dewey> {
        while let Some(p) = self.parts.get_mut(self.cur) {
            if let Some(n) = p.next_node() {
                return Some(n);
            }
            self.cur += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn list(items: &[&str]) -> MemList {
        MemList::new(items.iter().map(|s| d(s)).collect())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let l = list(&["0.2", "0.1", "0.2", "0"]);
        let ids: Vec<String> = l.nodes().iter().map(|n| n.to_string()).collect();
        assert_eq!(ids, ["0", "0.1", "0.2"]);
    }

    #[test]
    fn rm_and_lm() {
        let mut l = list(&["0.1", "0.3", "0.5"]);
        assert_eq!(l.rm(&d("0.3")), Some(d("0.3"))); // exact
        assert_eq!(l.lm(&d("0.3")), Some(d("0.3")));
        assert_eq!(l.rm(&d("0.2")), Some(d("0.3"))); // between
        assert_eq!(l.lm(&d("0.2")), Some(d("0.1")));
        assert_eq!(l.rm(&d("0.6")), None); // past the end
        assert_eq!(l.lm(&d("0.6")), Some(d("0.5")));
        assert_eq!(l.rm(&d("0.0")), Some(d("0.1"))); // before the start
        assert_eq!(l.lm(&d("0.0")), None);
    }

    #[test]
    fn lm_rm_with_ancestor_ids() {
        // 0.1 < 0.1.0 in preorder; matches respect that.
        let mut l = list(&["0.1", "0.1.0.2", "0.2"]);
        assert_eq!(l.rm(&d("0.1.0")), Some(d("0.1.0.2")));
        assert_eq!(l.lm(&d("0.1.0")), Some(d("0.1")));
    }

    #[test]
    fn stream_iterates_in_order_and_rewinds() {
        let mut l = list(&["0.2", "0.1"]);
        assert_eq!(l.next_node(), Some(d("0.1")));
        assert_eq!(l.next_node(), Some(d("0.2")));
        assert_eq!(l.next_node(), None);
        l.rewind();
        assert_eq!(l.next_node(), Some(d("0.1")));
    }

    #[test]
    fn empty_list() {
        let mut l = MemList::new(vec![]);
        assert!(RankedList::is_empty(&l));
        assert_eq!(l.rm(&d("0")), None);
        assert_eq!(l.lm(&d("0")), None);
        assert_eq!(l.next_node(), None);
    }

    /// Splits `all` into disjoint consecutive runs and chains them.
    fn chained_from(all: &[Dewey], cuts: &[usize]) -> ChainedRankedList {
        let mut parts: Vec<(Dewey, Box<dyn RankedList>)> = Vec::new();
        let mut start = 0;
        for &cut in cuts.iter().chain(std::iter::once(&all.len())) {
            if cut > start {
                let run = all[start..cut].to_vec();
                parts.push((run[0].clone(), Box::new(MemList::from_sorted(run))));
                start = cut;
            }
        }
        ChainedRankedList::new(parts)
    }

    #[test]
    fn chained_ranked_matches_flat_oracle() {
        let all: Vec<Dewey> =
            ["0.0", "0.1", "0.1.0.2", "0.2", "0.4.1", "0.4.2", "0.7", "1.0"]
                .iter()
                .map(|s| d(s))
                .collect();
        let mut oracle = MemList::from_sorted(all.clone());
        for cuts in [vec![], vec![3], vec![1, 4, 6], vec![2, 3, 4, 5]] {
            let mut chain = chained_from(&all, &cuts);
            assert_eq!(RankedList::len(&chain), all.len() as u64);
            let mut probes = all.clone();
            probes.extend(["0", "0.0.0", "0.3", "0.4.1.9", "0.9", "2"].iter().map(|s| d(s)));
            for p in &probes {
                assert_eq!(chain.rm(p), oracle.rm(p), "rm({p}) cuts {cuts:?}");
                assert_eq!(chain.lm(p), oracle.lm(p), "lm({p}) cuts {cuts:?}");
            }
        }
    }

    #[test]
    fn chained_ranked_empty_and_single() {
        let mut empty = ChainedRankedList::new(vec![]);
        assert!(RankedList::is_empty(&empty));
        assert_eq!(empty.rm(&d("0")), None);
        assert_eq!(empty.lm(&d("0")), None);
    }

    #[test]
    fn chained_stream_concatenates_and_rewinds() {
        let a = MemList::from_sorted(vec![d("0.1"), d("0.2")]);
        let b = MemList::from_sorted(vec![d("0.5")]);
        let mut s = ChainedStreamList::new(vec![Box::new(a), Box::new(b)]);
        assert_eq!(StreamList::len(&s), 3);
        let mut got = Vec::new();
        while let Some(n) = s.next_node() {
            got.push(n);
        }
        assert_eq!(got, vec![d("0.1"), d("0.2"), d("0.5")]);
        s.rewind();
        assert_eq!(s.next_node(), Some(d("0.1")));
        let mut none = ChainedStreamList::new(vec![]);
        assert_eq!(none.next_node(), None);
    }
}

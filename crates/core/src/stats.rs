//! Algorithm-level operation counters.
//!
//! Table 1 of the paper characterizes the algorithms by their number of
//! match operations and Dewey comparisons, in addition to disk accesses
//! (counted by `xk-storage`). Every algorithm in this crate fills an
//! [`AlgoStats`] so experiments can report measured operation counts next
//! to the analytic formulas.

/// Operation counters shared by all SLCA/LCA algorithms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlgoStats {
    /// Indexed match operations (`lm`/`rm` calls). The paper's IL bound is
    /// `2(k-1)|S_1|` of these per query.
    pub match_lookups: u64,
    /// Nodes pulled off sequential streams (Scan Eager cursor advances,
    /// Stack merge consumption, and `S_1` iteration).
    pub nodes_scanned: u64,
    /// LCA (longest-common-prefix) computations.
    pub lca_computations: u64,
    /// SLCA candidates generated before ancestor filtering.
    pub candidates: u64,
    /// Stack entries pushed (Stack algorithm only).
    pub stack_pushes: u64,
    /// Results emitted.
    pub results: u64,
}

impl AlgoStats {
    /// Component-wise sum, for aggregating over a query workload.
    pub fn accumulate(&mut self, other: &AlgoStats) {
        self.match_lookups += other.match_lookups;
        self.nodes_scanned += other.nodes_scanned;
        self.lca_computations += other.lca_computations;
        self.candidates += other.candidates;
        self.stack_pushes += other.stack_pushes;
        self.results += other.results;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_fields() {
        let mut a = AlgoStats { match_lookups: 1, nodes_scanned: 2, ..Default::default() };
        let b = AlgoStats { match_lookups: 10, results: 3, ..Default::default() };
        a.accumulate(&b);
        assert_eq!(a.match_lookups, 11);
        assert_eq!(a.nodes_scanned, 2);
        assert_eq!(a.results, 3);
    }
}

//! The brute-force baseline (Section 3 of the paper) — `O(d·Π|S_i|)`.
//!
//! Computes the LCA of every node combination and removes ancestor nodes.
//! Besides being slow it is *blocking*: nothing can be reported until all
//! combinations are examined. It serves as the correctness oracle for the
//! other algorithms in tests and as a baseline in micro-benchmarks.

use std::collections::BTreeSet;
use xk_xmltree::Dewey;

/// All distinct LCAs `lca(n_1, …, n_k)` over the cartesian product of the
/// lists. This is the paper's `lca(S_1, …, S_k)` set (Section 5).
/// Returns an empty set if any list is empty.
pub fn brute_force_all_lcas(lists: &[Vec<Dewey>]) -> BTreeSet<Dewey> {
    let mut out = BTreeSet::new();
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return out;
    }
    // Odometer over the cartesian product of list indices.
    let mut idx = vec![0usize; lists.len()];
    loop {
        let mut lca = lists[0][idx[0]].clone();
        for (list, &i) in lists[1..].iter().zip(&idx[1..]) {
            lca = lca.lca(&list[i]);
        }
        out.insert(lca);
        // Advance the odometer; stop after the last combination.
        let mut pos = lists.len();
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < lists[pos].len() {
                break;
            }
            idx[pos] = 0;
        }
    }
}

/// The brute-force SLCA: all LCAs, minus ancestor nodes
/// (`slca(S_1, …, S_k) = removeAncestor(lca(S_1, …, S_k))`).
pub fn brute_force_slca(lists: &[Vec<Dewey>]) -> Vec<Dewey> {
    let all = brute_force_all_lcas(lists);
    remove_ancestors(all)
}

/// Removes every node that is an ancestor of another node in the set. In
/// a preorder-sorted set, a node's descendants are contiguous right after
/// it, so checking each node against its successor suffices.
pub fn remove_ancestors(sorted: BTreeSet<Dewey>) -> Vec<Dewey> {
    let nodes: Vec<Dewey> = sorted.into_iter().collect();
    let mut out = Vec::with_capacity(nodes.len());
    for i in 0..nodes.len() {
        let is_ancestor =
            i + 1 < nodes.len() && nodes[i].is_ancestor_of(&nodes[i + 1]);
        if !is_ancestor {
            out.push(nodes[i].clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn lists(spec: &[&[&str]]) -> Vec<Vec<Dewey>> {
        spec.iter().map(|l| l.iter().map(|s| d(s)).collect()).collect()
    }

    #[test]
    fn single_list_slca_is_remove_ancestors() {
        let ls = lists(&[&["0", "0.1", "0.1.2", "3"]]);
        assert_eq!(brute_force_slca(&ls), vec![d("0.1.2"), d("3")]);
    }

    #[test]
    fn school_figure_example() {
        // John at 0.?.., Ben at …: modeled as in Figure 1's answer
        // [0, 1, 2] for the query {John, Ben}.
        let john = &["0.1.0.0", "1.1.0.0", "2.1.0", "3.1.0.0"][..];
        let ben = &["0.2.0.0", "1.2.0.0.0", "2.2.0"][..];
        let ls = lists(&[john, ben]);
        assert_eq!(brute_force_slca(&ls), vec![d("0"), d("1"), d("2")]);
    }

    #[test]
    fn empty_list_gives_no_answers() {
        let ls = lists(&[&["0"], &[]]);
        assert!(brute_force_slca(&ls).is_empty());
        assert!(brute_force_all_lcas(&ls).is_empty());
    }

    #[test]
    fn all_lcas_include_ancestor_lcas() {
        // S1 = {0.0.0, 0.1}, S2 = {0.0.1}:
        //   lca(0.0.0, 0.0.1) = 0.0 ; lca(0.1, 0.0.1) = 0.
        let ls = lists(&[&["0.0.0", "0.1"], &["0.0.1"]]);
        let all: Vec<_> = brute_force_all_lcas(&ls).into_iter().collect();
        assert_eq!(all, vec![d("0"), d("0.0")]);
        assert_eq!(brute_force_slca(&ls), vec![d("0.0")]);
    }

    #[test]
    fn shared_node_in_both_lists() {
        // A node carrying both keywords is its own SLCA.
        let ls = lists(&[&["0.5"], &["0.5"]]);
        assert_eq!(brute_force_slca(&ls), vec![d("0.5")]);
    }

    #[test]
    fn remove_ancestors_chain() {
        let set: BTreeSet<Dewey> =
            ["/", "0", "0.0", "0.0.0", "1"].iter().map(|s| d(s)).collect();
        assert_eq!(remove_ancestors(set), vec![d("0.0.0"), d("1")]);
    }
}

//! The All-LCA extension (Section 5, Algorithm 3 of the paper).
//!
//! `lca(S_1, …, S_k)` — every node that is the LCA of *some* witness tuple
//! — equals the SLCAs plus a subset of their ancestors. Algorithm 3 first
//! finds the SLCAs with the Indexed Lookup algorithm, then checks each
//! ancestor of each SLCA **exactly once**, partitioning the ancestor paths
//! between consecutive SLCAs at their pairwise LCAs. Each check costs at
//! most `2k` match lookups (`checkLCA`):
//!
//! * a keyword node in the *left region* — `subtree(u)` before the child
//!   `c` of `u` on the path to the SLCA — is found by `rm(u, S_i)` and
//!   testing `n < c`;
//! * a keyword node in the *right region* — after `subtree(c)` — is found
//!   with the **uncle node** trick: `rm(uncle(c), S_i)` and testing that
//!   `u` is still an ancestor of the result.
//!
//! Either region containing a keyword node makes `u` an LCA (combine that
//! node with witnesses inside the SLCA's subtree); if every keyword node
//! under `u` sits inside `subtree(c)`, `u` cannot be the LCA of any tuple.

use crate::lists::{RankedList, StreamList};
use crate::slca::indexed_lookup_eager;
use crate::stats::AlgoStats;
use xk_xmltree::Dewey;

/// Whether a reported LCA is smallest or a proper ancestor of one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcaKind {
    /// The node is an SLCA.
    Smallest,
    /// The node is an LCA with an SLCA strictly below it.
    Ancestor,
}

/// Computes `lca(S_1, …, S_k)` (Algorithm 3).
///
/// `s1` streams the smallest list; `all` gives indexed access to **all**
/// `k` lists, with `all[0]` the same list `s1` streams. Results are
/// emitted as they are discovered: SLCAs in document order, each followed
/// by the confirmed ancestors it is responsible for (bottom-up), so the
/// overall order is not document order; the collect wrapper sorts.
// xk-analyze: allow(panic_path, reason = "k >= 2 is established by the early returns above; slca indices are in bounds by construction")
pub fn all_lcas(
    s1: &mut dyn StreamList,
    all: &mut [&mut dyn RankedList],
    mut emit: impl FnMut(Dewey, LcaKind),
) -> AlgoStats {
    assert!(!all.is_empty(), "at least one keyword list is required");
    if all.len() == 1 {
        // k = 1: lca(n) = n, so every node of S_1 is an LCA; the SLCAs are
        // the ones without descendants in S_1.
        return all_lcas_single_list(s1, emit);
    }

    // Phase 1: SLCAs via Indexed Lookup Eager over the other lists.
    let mut slcas: Vec<Dewey> = Vec::new();
    let (first, rest) = all.split_first_mut().expect("k >= 2");
    let _ = first; // S_1's indexed access is only needed for checkLCA below
    let mut stats = indexed_lookup_eager(s1, rest, |d| slcas.push(d));

    // Phase 2: walk ancestors, each exactly once. Ancestors of slcas[i]
    // strictly deeper than lca(slcas[i], slcas[i+1]) belong to slcas[i];
    // the rest are also ancestors of slcas[i+1] and are deferred. The last
    // SLCA owns its whole remaining path up to the root.
    for i in 0..slcas.len() {
        let x = &slcas[i];
        emit(x.clone(), LcaKind::Smallest);
        let stop_depth = match slcas.get(i + 1) {
            Some(next) => {
                stats.lca_computations += 1;
                x.lca_depth(next)
            }
            None => 0,
        };
        // Ancestors of x from the parent down to depth `stop_depth`
        // (exclusive for non-last, inclusive of the root for the last).
        let mut u = x.clone();
        while let Some(parent) = u.parent() {
            let include = if slcas.get(i + 1).is_some() {
                parent.depth() > stop_depth
            } else {
                true
            };
            if !include {
                break;
            }
            if check_lca(&parent, x, all, &mut stats) {
                stats.results += 1;
                emit(parent.clone(), LcaKind::Ancestor);
            }
            u = parent;
        }
    }
    stats
}

/// `checkLCA(u, x)` from Algorithm 3: `u` is a proper ancestor of the
/// SLCA `x`; returns true iff `u` is an LCA.
fn check_lca(
    u: &Dewey,
    x: &Dewey,
    all: &mut [&mut dyn RankedList],
    stats: &mut AlgoStats,
) -> bool {
    let c = u
        .child_towards(x)
        .expect("check_lca requires u to be a proper ancestor of x");
    // `None` iff c's ordinal is u32::MAX: no position exists to c's
    // right, so the right region below is empty and only the left region
    // can certify u.
    let uncle = c.uncle();
    for list in all.iter_mut() {
        // Left region: [u, c) in preorder — u itself and the subtrees of
        // c's left siblings.
        stats.match_lookups += 1;
        if let Some(n) = list.rm(u) {
            if n < c {
                return true;
            }
        }
        // Right region: descendants of u at or after the uncle position.
        if let Some(uncle) = &uncle {
            stats.match_lookups += 1;
            if let Some(n) = list.rm(uncle) {
                if u.is_ancestor_of(&n) {
                    return true;
                }
            }
        }
    }
    false
}

/// The `k = 1` special case: every node of `S_1` is an LCA of itself.
fn all_lcas_single_list(
    s1: &mut dyn StreamList,
    mut emit: impl FnMut(Dewey, LcaKind),
) -> AlgoStats {
    let mut stats = AlgoStats::default();
    s1.rewind();
    // A node is an SLCA iff no later node is its descendant; with the
    // stream sorted in preorder, that is "the immediate successor is not a
    // descendant".
    let mut prev: Option<Dewey> = None;
    while let Some(n) = s1.next_node() {
        stats.nodes_scanned += 1;
        if let Some(p) = prev.take() {
            let kind = if p.is_ancestor_of(&n) { LcaKind::Ancestor } else { LcaKind::Smallest };
            stats.results += 1;
            emit(p, kind);
        }
        prev = Some(n);
    }
    if let Some(p) = prev {
        stats.results += 1;
        emit(p, LcaKind::Smallest);
    }
    stats
}

/// Convenience wrapper collecting [`all_lcas`] results in document order.
pub fn all_lcas_collect(
    s1: &mut dyn StreamList,
    all: &mut [&mut dyn RankedList],
) -> (Vec<(Dewey, LcaKind)>, AlgoStats) {
    let mut out = Vec::new();
    let stats = all_lcas(s1, all, |d, k| out.push((d, k)));
    out.sort_by(|a, b| a.0.cmp(&b.0));
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_all_lcas;
    use crate::lists::MemList;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn mem(items: &[&str]) -> MemList {
        MemList::new(items.iter().map(|s| d(s)).collect())
    }

    /// Oracle comparison: all_lcas must produce exactly the brute-force
    /// LCA set, with `Smallest` marking exactly the brute-force SLCAs.
    fn check(lists: &[&[&str]]) -> Vec<(Dewey, LcaKind)> {
        let vecs: Vec<Vec<Dewey>> = lists
            .iter()
            .map(|l| {
                let mut v: Vec<Dewey> = l.iter().map(|s| d(s)).collect();
                v.sort();
                v
            })
            .collect();
        let expected: Vec<Dewey> = brute_force_all_lcas(&vecs).into_iter().collect();

        let mut s1 = mem(lists[0]);
        let mut owned: Vec<MemList> = lists.iter().map(|l| mem(l)).collect();
        let mut refs: Vec<&mut dyn RankedList> =
            owned.iter_mut().map(|l| l as &mut dyn RankedList).collect();
        let (got, _) = all_lcas_collect(&mut s1, &mut refs);
        let got_nodes: Vec<Dewey> = got.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(got_nodes, expected, "all-LCA disagrees with brute force on {lists:?}");
        got
    }

    #[test]
    fn school_example_has_root_as_extra_lca() {
        let john = &["0.1.0.0", "1.1.0.0", "2.1.0", "3.1.0.0"][..];
        let ben = &["0.2.0.0", "1.2.0.0.0", "2.2.0"][..];
        let got = check(&[ben, john]);
        // SLCAs 0, 1, 2 plus the root (John under class 3, Ben anywhere
        // else meet only at the root).
        assert_eq!(
            got,
            vec![
                (Dewey::root(), LcaKind::Ancestor),
                (d("0"), LcaKind::Smallest),
                (d("1"), LcaKind::Smallest),
                (d("2"), LcaKind::Smallest),
            ]
        );
    }

    #[test]
    fn ancestor_lca_via_left_region() {
        // S1 = {0.0.0, 0.1}, S2 = {0.0.1}: SLCA is 0.0; node 0 is an LCA
        // because S1's 0.1 sits right of subtree(0.0).
        let got = check(&[&["0.0.0", "0.1"], &["0.0.1"]]);
        assert_eq!(
            got,
            vec![(d("0"), LcaKind::Ancestor), (d("0.0"), LcaKind::Smallest)]
        );
    }

    #[test]
    fn ancestor_not_lca_when_keywords_confined() {
        // Everything lives inside 0.0; ancestors 0 and the root must NOT
        // be reported.
        let got = check(&[&["0.0.0"], &["0.0.1"]]);
        assert_eq!(got, vec![(d("0.0"), LcaKind::Smallest)]);
    }

    #[test]
    fn single_keyword_all_nodes_are_lcas() {
        let got = check_single(&["0", "0.1", "0.1.2", "4"]);
        assert_eq!(
            got,
            vec![
                (d("0"), LcaKind::Ancestor),
                (d("0.1"), LcaKind::Ancestor),
                (d("0.1.2"), LcaKind::Smallest),
                (d("4"), LcaKind::Smallest),
            ]
        );
    }

    fn check_single(items: &[&str]) -> Vec<(Dewey, LcaKind)> {
        let mut s1 = mem(items);
        let mut owned = [mem(items)];
        let mut refs: Vec<&mut dyn RankedList> =
            owned.iter_mut().map(|l| l as &mut dyn RankedList).collect();
        let (got, _) = all_lcas_collect(&mut s1, &mut refs);
        got
    }

    #[test]
    fn three_keywords_with_stacked_lcas() {
        check(&[
            &["0.0.0", "0.2", "1"],
            &["0.0.1", "0.3"],
            &["0.0.2", "2.0"],
        ]);
    }

    #[test]
    fn uncle_trick_right_region() {
        // SLCA at 0.0; keyword-2 node 0.5 lies to the RIGHT of subtree
        // (0.0), reachable only via the uncle lookup from child 0.0.
        let got = check(&[&["0.0.0"], &["0.0.1", "0.5"]]);
        assert_eq!(
            got,
            vec![(d("0"), LcaKind::Ancestor), (d("0.0"), LcaKind::Smallest)]
        );
    }

    #[test]
    fn empty_list_no_lcas() {
        let mut s1 = mem(&["0"]);
        let mut a = mem(&["0"]);
        let mut b = mem(&[]);
        let mut refs: Vec<&mut dyn RankedList> = vec![&mut a, &mut b];
        let (got, _) = all_lcas_collect(&mut s1, &mut refs);
        assert!(got.is_empty());
    }

    #[test]
    fn deep_chain_of_ancestor_lcas() {
        // Witnesses at every level off the spine make every spine node an
        // LCA.
        let got = check(&[
            &["0.0.0.0.0", "0.0.0.1", "0.0.1", "0.1"],
            &["0.0.0.0.1", "0.2"],
        ]);
        let nodes: Vec<String> = got.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(nodes, vec!["0", "0.0", "0.0.0", "0.0.0.0"]);
    }
}

//! The three SLCA algorithms of the paper: Indexed Lookup Eager, Scan
//! Eager, and Stack.
//!
//! All three take the *smallest* keyword list as the iterated list `S_1`
//! (the caller reorders using the frequency table, as the XKSearch query
//! engine does) and emit SLCAs through a callback, pipelined: results
//! stream out before the inputs are exhausted, per the paper's "eagerness"
//! property.

use crate::lists::{RankedList, StreamList};
use crate::matching::{deepest_dominator_ranked, EagerFilter};
use crate::stats::AlgoStats;
use xk_xmltree::Dewey;

/// **Indexed Lookup Eager** (Algorithm IL, the paper's core contribution).
///
/// For every node `v` of `S_1`, chains the match step through the other
/// lists: `x ← v; x ← slca({x}, S_i)` for `i = 2..k` (Property 2), each
/// step costing two indexed match lookups; the stream of candidates is
/// ancestor-filtered eagerly with Lemmas 1 and 2. Main-memory complexity
/// `O(k·d·|S_1|·log|S_max|)`.
///
/// `emit` receives SLCAs in document order. Returns the operation counts.
pub fn indexed_lookup_eager(
    s1: &mut dyn StreamList,
    others: &mut [&mut dyn RankedList],
    mut emit: impl FnMut(Dewey),
) -> AlgoStats {
    let mut stats = AlgoStats::default();
    if others.iter().any(|l| l.is_empty()) {
        return stats;
    }
    s1.rewind();
    let mut filter = EagerFilter::new();
    'witness: while let Some(v) = s1.next_node() {
        stats.nodes_scanned += 1;
        let mut x = v;
        for list in others.iter_mut() {
            match deepest_dominator_ranked(*list, &x, &mut stats) {
                Some(next) => x = next,
                None => continue 'witness, // unreachable: lists are non-empty
            }
        }
        stats.candidates += 1;
        filter.push(x, |slca| {
            stats.results += 1;
            emit(slca);
        });
    }
    filter.finish(|slca| {
        stats.results += 1;
        emit(slca);
    });
    stats
}

/// **Buffered Indexed Lookup Eager** — the paper's Algorithm 1 with an
/// explicit buffer of β nodes.
///
/// The paper processes `S_1` in blocks: it computes the SLCAs of the
/// first β witnesses, emits every confirmed answer, carries the last
/// (still unconfirmed) candidate into the next block, and repeats. "The
/// smaller β is, the faster the algorithm produces the first SLCA",
/// while a larger β batches `S_1` I/O. The streaming [`indexed_lookup_eager`]
/// is the β = 1 limit; this variant makes the buffering observable (block
/// boundaries reported through `on_block`) for the β ablation bench, and
/// produces identical answers for every β — see the property tests.
pub fn indexed_lookup_eager_buffered(
    s1: &mut dyn StreamList,
    others: &mut [&mut dyn RankedList],
    beta: usize,
    mut on_block: impl FnMut(usize),
    mut emit: impl FnMut(Dewey),
) -> AlgoStats {
    assert!(beta > 0, "the buffer must hold at least one node");
    let mut stats = AlgoStats::default();
    if others.iter().any(|l| l.is_empty()) {
        return stats;
    }
    s1.rewind();
    let mut filter = EagerFilter::new();
    let mut buffer: Vec<Dewey> = Vec::with_capacity(beta);
    let mut exhausted = false;
    while !exhausted {
        // Fill the buffer with the next β witnesses of S1.
        buffer.clear();
        while buffer.len() < beta {
            match s1.next_node() {
                Some(v) => {
                    stats.nodes_scanned += 1;
                    buffer.push(v);
                }
                None => {
                    exhausted = true;
                    break;
                }
            }
        }
        if buffer.is_empty() {
            break;
        }
        // Compute the block's candidates and push them through the
        // ancestor filter; everything except a possible trailing
        // frontier is emitted before the next block is read.
        'witness: for v in buffer.drain(..) {
            let mut x = v;
            for list in others.iter_mut() {
                match deepest_dominator_ranked(*list, &x, &mut stats) {
                    Some(next) => x = next,
                    None => continue 'witness,
                }
            }
            stats.candidates += 1;
            filter.push(x, |slca| {
                stats.results += 1;
                emit(slca);
            });
        }
        on_block(beta);
    }
    filter.finish(|slca| {
        stats.results += 1;
        emit(slca);
    });
    stats
}

/// Convenience wrapper collecting [`indexed_lookup_eager`] results.
pub fn indexed_lookup_eager_collect(
    s1: &mut dyn StreamList,
    others: &mut [&mut dyn RankedList],
) -> (Vec<Dewey>, AlgoStats) {
    let mut out = Vec::new();
    let stats = indexed_lookup_eager(s1, others, |d| out.push(d));
    (out, stats)
}

/// **Scan Eager** — the Indexed Lookup Eager structure with the match
/// operations answered by per-list cursors that remember their position
/// (Section 3.2). Preferable when the keyword frequencies are similar:
/// the probes arrive in near-ascending document order, so each cursor
/// advances forward instead of paying a full `log |S_i|` lookup.
///
/// The cursor state lives behind the [`RankedList`] implementation: a
/// disk-backed list uses an anchored B+tree cursor (see
/// `DiskRankedList::anchored` in `xk-index`) whose pinned root-to-leaf
/// path turns the near-monotone probe sequence into O(1) leaf hops —
/// the same access pattern the paper's scan cursors exploit, without a
/// bespoke in-memory advance loop duplicating the match logic.
pub fn scan_eager<L: RankedList>(
    s1: &mut dyn StreamList,
    others: Vec<L>,
    mut emit: impl FnMut(Dewey),
) -> AlgoStats {
    let mut stats = AlgoStats::default();
    let mut lists = others;
    if lists.iter().any(|l| l.is_empty()) {
        return stats;
    }
    s1.rewind();
    let mut filter = EagerFilter::new();
    'witness: while let Some(v) = s1.next_node() {
        stats.nodes_scanned += 1;
        let mut x = v;
        for list in lists.iter_mut() {
            match deepest_dominator_ranked(list, &x, &mut stats) {
                Some(next) => x = next,
                None => continue 'witness, // unreachable: lists are non-empty
            }
        }
        stats.candidates += 1;
        filter.push(x, |slca| {
            stats.results += 1;
            emit(slca);
        });
    }
    filter.finish(|slca| {
        stats.results += 1;
        emit(slca);
    });
    stats
}

/// Convenience wrapper collecting [`scan_eager`] results.
pub fn scan_eager_collect<L: RankedList>(
    s1: &mut dyn StreamList,
    others: Vec<L>,
) -> (Vec<Dewey>, AlgoStats) {
    let mut out = Vec::new();
    let stats = scan_eager(s1, others, |d| out.push(d));
    (out, stats)
}

/// One entry of the Stack algorithm's path stack: the keyword bitset of
/// the subtree seen so far plus the "an SLCA was already reported below"
/// flag that suppresses ancestors.
#[derive(Debug, Clone, Copy, Default)]
struct StackEntry {
    keywords: u64,
    has_slca_descendant: bool,
}

/// **Stack** — the sort-merge, stack-based algorithm adapted from XRANK's
/// DIL [13] to SLCA semantics (Section 3.3).
///
/// All `k` lists are merged in Dewey order. The stack holds the path of
/// the most recent node; each entry carries a boolean per keyword. When an
/// entry is popped with every keyword bit set — and no SLCA was reported
/// in its subtree — the node is an SLCA. Complexity `O(k·d·Σ|S_i|)`.
///
/// Supports up to 64 keywords (the bitset width); the paper's queries use
/// 2–5.
// xk-analyze: allow(panic_path, reason = "heads/streams indices range over 0..k fixed at entry; the stack is non-empty whenever popped by the loop structure")
pub fn stack_merge<L: StreamList>(lists: Vec<L>, mut emit: impl FnMut(Dewey)) -> AlgoStats {
    let mut stats = AlgoStats::default();
    let k = lists.len();
    assert!(k <= 64, "the Stack algorithm supports at most 64 keywords");
    if k == 0 {
        return stats;
    }
    let full: u64 = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };

    // K-way merge state: one lookahead per list.
    let mut streams: Vec<L> = lists;
    let mut heads: Vec<Option<Dewey>> = streams
        .iter_mut()
        .map(|s| {
            s.rewind();
            s.next_node()
        })
        .collect();
    if heads.iter().any(|h| h.is_none()) {
        // An empty list can never complete a keyword set; the SLCA result
        // is empty, matching the other algorithms' early exit.
        return stats;
    }

    // The current path: `path` are the Dewey components of the last node;
    // `meta[d]` is the entry for the prefix of length `d` (meta[0] is the
    // root), so `meta.len() == path.len() + 1`.
    let mut path: Vec<u32> = Vec::new();
    let mut meta: Vec<StackEntry> = vec![StackEntry::default()];

    let pop_one = |path: &mut Vec<u32>, meta: &mut Vec<StackEntry>,
                       stats: &mut AlgoStats,
                       emit: &mut dyn FnMut(Dewey)| {
        let e = meta.pop().expect("never pops the root entry");
        let parent = meta.last_mut().expect("root entry always present");
        if e.has_slca_descendant {
            parent.has_slca_descendant = true;
            parent.keywords |= e.keywords;
        } else if e.keywords == full {
            stats.results += 1;
            emit(Dewey::from_components(path.clone()));
            parent.has_slca_descendant = true;
        } else {
            parent.keywords |= e.keywords;
        }
        path.pop();
    };

    loop {
        // Pick the smallest head among the streams.
        let mut min_idx: Option<usize> = None;
        for (i, h) in heads.iter().enumerate() {
            if let Some(d) = h {
                if min_idx.is_none_or(|m| d < heads[m].as_ref().unwrap()) {
                    min_idx = Some(i);
                }
            }
        }
        let Some(idx) = min_idx else { break };
        let node = heads[idx].take().expect("selected head exists");
        heads[idx] = streams[idx].next_node();
        stats.nodes_scanned += 1;

        // Pop entries that are not ancestors-or-self of the new node.
        let lcp = path
            .iter()
            .zip(node.components())
            .take_while(|(a, b)| a == b)
            .count();
        while path.len() > lcp {
            pop_one(&mut path, &mut meta, &mut stats, &mut emit);
        }
        // Push the new node's remaining components.
        for &c in &node.components()[lcp..] {
            path.push(c);
            meta.push(StackEntry::default());
            stats.stack_pushes += 1;
        }
        // Mark the keyword on the node's own entry.
        meta.last_mut().expect("root entry").keywords |= 1 << idx;
    }

    // Flush: pop everything, then consider the root itself.
    while !path.is_empty() {
        pop_one(&mut path, &mut meta, &mut stats, &mut emit);
    }
    let root = meta[0];
    if !root.has_slca_descendant && root.keywords == full {
        stats.results += 1;
        emit(Dewey::root());
    }
    stats
}

/// Convenience wrapper collecting [`stack_merge`] results.
pub fn stack_merge_collect<L: StreamList>(lists: Vec<L>) -> (Vec<Dewey>, AlgoStats) {
    let mut out = Vec::new();
    let stats = stack_merge(lists, |d| out.push(d));
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_slca;
    use crate::lists::MemList;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn mem(items: &[&str]) -> MemList {
        MemList::new(items.iter().map(|s| d(s)).collect())
    }

    fn deweys(items: &[&str]) -> Vec<Dewey> {
        let mut v: Vec<Dewey> = items.iter().map(|s| d(s)).collect();
        v.sort();
        v
    }

    /// Runs all three algorithms and the oracle on the same lists; they
    /// must agree. `lists[0]` plays `S_1`.
    fn check_all(lists: &[&[&str]]) -> Vec<Dewey> {
        let vecs: Vec<Vec<Dewey>> = lists.iter().map(|l| deweys(l)).collect();
        let expected = brute_force_slca(&vecs);

        let mut s1 = mem(lists[0]);
        let mut others: Vec<MemList> = lists[1..].iter().map(|l| mem(l)).collect();
        let mut refs: Vec<&mut dyn RankedList> =
            others.iter_mut().map(|l| l as &mut dyn RankedList).collect();
        let (il, _) = indexed_lookup_eager_collect(&mut s1, &mut refs);
        assert_eq!(il, expected, "IL disagrees with brute force on {lists:?}");

        let mut s1 = mem(lists[0]);
        let scan_lists: Vec<MemList> = lists[1..].iter().map(|l| mem(l)).collect();
        let (se, _) = scan_eager_collect(&mut s1, scan_lists);
        assert_eq!(se, expected, "Scan Eager disagrees with brute force on {lists:?}");

        let stack_lists: Vec<MemList> = lists.iter().map(|l| mem(l)).collect();
        let (st, _) = stack_merge_collect(stack_lists);
        assert_eq!(st, expected, "Stack disagrees with brute force on {lists:?}");

        expected
    }

    #[test]
    fn school_example_two_keywords() {
        let john = &["0.1.0.0", "1.1.0.0", "2.1.0", "3.1.0.0"][..];
        let ben = &["0.2.0.0", "1.2.0.0.0", "2.2.0"][..];
        let r = check_all(&[ben, john]); // smallest list first
        assert_eq!(r, vec![d("0"), d("1"), d("2")]);
    }

    #[test]
    fn three_keywords() {
        let a = &["0.0", "1.0", "2.0.0"][..];
        let b = &["0.1", "1.5.0", "3"][..];
        let c = &["0.2.1", "1.5.1", "2.9"][..];
        check_all(&[a, b, c]);
    }

    #[test]
    fn single_keyword_removes_ancestors() {
        let r = check_all(&[&["0", "0.1", "0.1.2", "4"]]);
        assert_eq!(r, vec![d("0.1.2"), d("4")]);
    }

    #[test]
    fn no_answer_when_keywords_disjoint_subtrees_only_root() {
        let r = check_all(&[&["0.0"], &["1.0"]]);
        assert_eq!(r, vec![Dewey::root()]);
    }

    #[test]
    fn same_node_contains_both_keywords() {
        let r = check_all(&[&["0.3"], &["0.3"]]);
        assert_eq!(r, vec![d("0.3")]);
    }

    #[test]
    fn empty_other_list_yields_nothing() {
        let mut s1 = mem(&["0"]);
        let mut empty = mem(&[]);
        let mut refs: Vec<&mut dyn RankedList> = vec![&mut empty];
        let (r, _) = indexed_lookup_eager_collect(&mut s1, &mut refs);
        assert!(r.is_empty());
        let (r, _) = scan_eager_collect(&mut mem(&["0"]), vec![mem(&[])]);
        assert!(r.is_empty());
        let (r, _) = stack_merge_collect(vec![mem(&["0"]), mem(&[])]);
        assert!(r.is_empty());
    }

    #[test]
    fn nested_answers_keep_only_deepest() {
        // Both keywords under 0.0.0 and also directly under 0 (via 0.1 and
        // 0.2): the SLCA 0.0.0 suppresses the ancestor 0? No — 0 is an LCA
        // (from the 0.1/0.2 pair) but not smallest, since 0.0.0 is below.
        let a = &["0.0.0.0", "0.1"][..];
        let b = &["0.0.0.1", "0.2"][..];
        let r = check_all(&[a, b]);
        assert_eq!(r, vec![d("0.0.0")]);
    }

    #[test]
    fn interleaved_subtrees() {
        let a = &["0.0", "0.2", "1.1", "2.0.0.0", "3"][..];
        let b = &["0.1", "1.0", "2.0.1"][..];
        check_all(&[b, a]);
    }

    #[test]
    fn il_operation_counts_match_bound() {
        // |S1| = 3, k = 3: at most 2(k-1)|S1| = 12 match lookups.
        let mut s1 = mem(&["0.0", "1.0", "2.0"]);
        let mut l2 = mem(&["0.1", "1.1", "2.1", "3.1"]);
        let mut l3 = mem(&["0.2", "1.2", "2.2", "3.2", "4.2"]);
        let mut refs: Vec<&mut dyn RankedList> = vec![&mut l2, &mut l3];
        let (_, stats) = indexed_lookup_eager_collect(&mut s1, &mut refs);
        assert!(stats.match_lookups <= 12, "lookups {}", stats.match_lookups);
        assert_eq!(stats.candidates, 3);
    }

    #[test]
    fn scan_probe_count_is_bounded_by_witnesses() {
        // Scan Eager probes each other list at most twice per S1 witness
        // (one rm + one lm), independent of the other list's size — the
        // cursor locality lives below the RankedList interface.
        let mut s1 = mem(&["0.0", "5.0"]);
        let big: Vec<String> = (0..100).map(|i| format!("{i}.1")).collect();
        let big_refs: Vec<&str> = big.iter().map(|s| s.as_str()).collect();
        let (_, stats) = scan_eager_collect(&mut s1, vec![mem(&big_refs)]);
        assert!(stats.nodes_scanned <= 2, "only S1 is streamed, scanned {}", stats.nodes_scanned);
        assert!(stats.match_lookups <= 2 * 2, "lookups {}", stats.match_lookups);
    }

    #[test]
    fn stack_counts_pushes() {
        let (r, stats) = stack_merge_collect(vec![mem(&["0.0.0"]), mem(&["0.0.1"])]);
        assert_eq!(r, vec![d("0.0")]);
        assert_eq!(stats.stack_pushes, 4); // 0,0,0 then 1
        assert_eq!(stats.nodes_scanned, 2);
    }

    #[test]
    fn buffered_il_matches_streaming_for_every_beta() {
        let a = &["0.0", "0.2", "1.1", "2.0.0.0", "3", "4.1", "5.0"][..];
        let b = &["0.1", "1.0", "2.0.1", "4.2", "5.1"][..];
        let c = &["0.3", "1.2", "2.1", "4.0"][..];
        let expected = {
            let mut s1 = mem(a);
            let mut l2 = mem(b);
            let mut l3 = mem(c);
            let mut refs: Vec<&mut dyn RankedList> = vec![&mut l2, &mut l3];
            indexed_lookup_eager_collect(&mut s1, &mut refs).0
        };
        for beta in [1, 2, 3, 5, 7, 100] {
            let mut s1 = mem(a);
            let mut l2 = mem(b);
            let mut l3 = mem(c);
            let mut refs: Vec<&mut dyn RankedList> = vec![&mut l2, &mut l3];
            let mut out = Vec::new();
            let mut blocks = 0;
            indexed_lookup_eager_buffered(
                &mut s1,
                &mut refs,
                beta,
                |_| blocks += 1,
                |d| out.push(d),
            );
            assert_eq!(out, expected, "beta = {beta}");
            assert_eq!(blocks, a.len().div_ceil(beta), "beta = {beta}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn buffered_il_rejects_zero_beta() {
        let mut s1 = mem(&["0"]);
        let mut l2 = mem(&["1"]);
        let mut refs: Vec<&mut dyn RankedList> = vec![&mut l2];
        indexed_lookup_eager_buffered(&mut s1, &mut refs, 0, |_| {}, |_| {});
    }

    #[test]
    fn results_stream_in_document_order() {
        let a = &["0.0", "1.0", "2.0", "3.0"][..];
        let b = &["0.1", "1.1", "2.1", "3.1"][..];
        let r = check_all(&[a, b]);
        let mut sorted = r.clone();
        sorted.sort();
        assert_eq!(r, sorted);
        assert_eq!(r.len(), 4);
    }
}

//! # xk-slca
//!
//! The core algorithms of *Efficient Keyword Search for Smallest LCAs in
//! XML Databases* (Xu & Papakonstantinou, SIGMOD 2005), over abstract
//! keyword lists:
//!
//! * [`indexed_lookup_eager`] — the paper's main contribution (Algorithm
//!   IL): `O(k·d·|S_1|·log|S_max|)`, orders of magnitude faster than the
//!   alternatives when keyword frequencies differ;
//! * [`scan_eager`] — the variant tuned for similar frequencies: the same
//!   eager loop, but the match lookups are expected to be answered by
//!   position-remembering cursors (anchored B+tree cursors on disk) so a
//!   near-sequential probe pattern costs `O(d·Σ|S_i|)`;
//! * [`stack_merge`] — the prior-work sort-merge Stack algorithm (XRANK's
//!   DIL adapted to SLCA semantics), `O(k·d·Σ|S_i|)`;
//! * [`brute_force_slca`] — the `O(d·Π|S_i|)` oracle;
//! * [`all_lcas`] — the Section 5 extension enumerating *all* LCAs with
//!   exactly one `checkLCA` per SLCA ancestor.
//!
//! Keyword lists are abstracted by [`RankedList`] (indexed left/right
//! match) and [`StreamList`] (sequential scan); [`MemList`] implements
//! both in memory, and the `xksearch` crate provides disk-backed
//! implementations over B+trees and page chains.
//!
//! ```
//! use xk_slca::{MemList, RankedList, indexed_lookup_eager_collect};
//! use xk_xmltree::Dewey;
//!
//! let d = |s: &str| s.parse::<Dewey>().unwrap();
//! // Keyword "Ben" is rarer, so it plays S1.
//! let mut ben = MemList::new(vec![d("0.2.0.0"), d("1.2.0.0.0"), d("2.2.0")]);
//! let mut john = MemList::new(vec![d("0.1.0.0"), d("1.1.0.0"), d("2.1.0"), d("3.1.0.0")]);
//! let mut others: Vec<&mut dyn RankedList> = vec![&mut john];
//! let (slcas, _stats) = indexed_lookup_eager_collect(&mut ben, &mut others);
//! assert_eq!(slcas, vec![d("0"), d("1"), d("2")]);
//! ```

pub mod brute;
pub mod lca;
pub mod lists;
pub mod matching;
pub mod slca;
pub mod stats;

pub use brute::{brute_force_all_lcas, brute_force_slca, remove_ancestors};
pub use lca::{all_lcas, all_lcas_collect, LcaKind};
pub use lists::{ChainedRankedList, ChainedStreamList, MemList, RankedList, StreamList};
pub use matching::{deeper, deepest_dominator_ranked, EagerFilter};
pub use slca::{
    indexed_lookup_eager, indexed_lookup_eager_buffered, indexed_lookup_eager_collect,
    scan_eager, scan_eager_collect, stack_merge, stack_merge_collect,
};
pub use stats::AlgoStats;

//! The match step (Property 1 of the paper) and the eager ancestor filter
//! (Lemmas 1 and 2).

use crate::lists::RankedList;
use crate::stats::AlgoStats;
use xk_xmltree::Dewey;

/// Property 1 generalized: the deepest ancestor-or-self of `q` whose
/// subtree contains a node of the list — i.e. the single node of
/// `slca({q}, S)`. Computed from the left and right matches of `q`:
/// `deeper(lca(q, lm(q, S)), lca(q, rm(q, S)))`. Returns `None` iff the
/// list is empty.
pub fn deepest_dominator_ranked(
    list: &mut dyn RankedList,
    q: &Dewey,
    stats: &mut AlgoStats,
) -> Option<Dewey> {
    stats.match_lookups += 1;
    let rm = list.rm(q);
    if rm.as_deref_eq(q) {
        // Exact hit: q itself carries the keyword; nothing can be deeper.
        return Some(q.clone());
    }
    stats.match_lookups += 1;
    let lm = list.lm(q);
    let right = rm.map(|n| {
        stats.lca_computations += 1;
        q.lca(&n)
    });
    let left = lm.map(|n| {
        stats.lca_computations += 1;
        q.lca(&n)
    });
    deeper(left, right)
}

/// Small helper: `Option<Dewey>` equality against a probe without cloning.
trait OptDeweyEq {
    fn as_deref_eq(&self, q: &Dewey) -> bool;
}

impl OptDeweyEq for Option<Dewey> {
    fn as_deref_eq(&self, q: &Dewey) -> bool {
        self.as_ref() == Some(q)
    }
}

/// The paper's `deeper` function: both arguments are ancestors-or-self of
/// the same node (hence comparable); returns the descendant one. `None`
/// arguments are ignored.
pub fn deeper(a: Option<Dewey>, b: Option<Dewey>) -> Option<Dewey> {
    match (a, b) {
        (None, x) => x,
        (x, None) => x,
        (Some(a), Some(b)) => Some(if a.depth() >= b.depth() { a } else { b }),
    }
}

/// The eager ancestor filter built on Lemmas 1 and 2 of the paper.
///
/// Candidates arrive in the order of their `S_1` witnesses. The filter
/// keeps a one-node frontier:
///
/// * Lemma 1 — a candidate `x` with `x <= frontier` is an ancestor (or
///   duplicate) of the frontier and is discarded;
/// * Lemma 2 — when `x > frontier` and the frontier is *not* an ancestor
///   of `x`, no later candidate can be a descendant of the frontier
///   either, so the frontier is confirmed as an SLCA immediately (this is
///   the "eagerness": results stream out before the input is exhausted).
#[derive(Debug, Default)]
pub struct EagerFilter {
    frontier: Option<Dewey>,
}

impl EagerFilter {
    /// Creates an empty filter.
    pub fn new() -> EagerFilter {
        EagerFilter { frontier: None }
    }

    /// Offers a candidate; `emit` receives any SLCA confirmed by it.
    pub fn push(&mut self, candidate: Dewey, mut emit: impl FnMut(Dewey)) {
        match self.frontier.take() {
            None => self.frontier = Some(candidate),
            Some(frontier) => {
                if candidate <= frontier {
                    // Lemma 1: candidate is an ancestor-or-duplicate.
                    self.frontier = Some(frontier);
                } else if frontier.is_ancestor_of(&candidate) {
                    self.frontier = Some(candidate);
                } else {
                    // Lemma 2: the frontier is an SLCA.
                    emit(frontier);
                    self.frontier = Some(candidate);
                }
            }
        }
    }

    /// Flushes the filter; the final frontier (if any) is an SLCA.
    pub fn finish(self, mut emit: impl FnMut(Dewey)) {
        if let Some(f) = self.frontier {
            emit(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::MemList;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn mem(items: &[&str]) -> MemList {
        MemList::new(items.iter().map(|s| d(s)).collect())
    }

    #[test]
    fn deeper_picks_descendant() {
        assert_eq!(deeper(Some(d("0.1")), Some(d("0.1.2"))), Some(d("0.1.2")));
        assert_eq!(deeper(Some(d("0.1.2")), Some(d("0.1"))), Some(d("0.1.2")));
        assert_eq!(deeper(None, Some(d("0"))), Some(d("0")));
        assert_eq!(deeper(Some(d("0")), None), Some(d("0")));
        assert_eq!(deeper(None, None), None);
    }

    #[test]
    fn ranked_match_basic() {
        let mut s = AlgoStats::default();
        let mut l = mem(&["0.0.5", "0.2.1"]);
        // q = 0.0.9: left match 0.0.5 shares prefix 0.0; right match 0.2.1
        // shares prefix 0.
        assert_eq!(deepest_dominator_ranked(&mut l, &d("0.0.9"), &mut s), Some(d("0.0")));
        // Exact membership returns q itself.
        assert_eq!(deepest_dominator_ranked(&mut l, &d("0.2.1"), &mut s), Some(d("0.2.1")));
        // Empty list: no dominator.
        let mut e = mem(&[]);
        assert_eq!(deepest_dominator_ranked(&mut e, &d("0"), &mut s), None);
    }

    #[test]
    fn ranked_match_counts_lookups() {
        let mut s = AlgoStats::default();
        let mut l = mem(&["0.0", "0.5"]);
        deepest_dominator_ranked(&mut l, &d("0.3"), &mut s);
        assert_eq!(s.match_lookups, 2); // one rm + one lm
        let mut s = AlgoStats::default();
        deepest_dominator_ranked(&mut l, &d("0.5"), &mut s);
        assert_eq!(s.match_lookups, 1); // exact rm hit short-circuits
    }

    #[test]
    fn eager_filter_school_example() {
        // Candidates for "John, Ben" on Figure 1 arrive per John witness;
        // a shallower repeat (the root) must be suppressed.
        let mut out = Vec::new();
        let mut f = EagerFilter::new();
        for c in ["0", "1", "2", "/"] {
            // class CS2A, class CS3A, project, then root (from the
            // John-only class whose deepest dominator is the root).
            let cand = d(c);
            f.push(cand, |x| out.push(x));
        }
        f.finish(|x| out.push(x));
        assert_eq!(out, vec![d("0"), d("1"), d("2")]);
    }

    #[test]
    fn eager_filter_replaces_ancestor_frontier() {
        let mut out = Vec::new();
        let mut f = EagerFilter::new();
        f.push(d("0"), |x| out.push(x)); // frontier 0
        f.push(d("0.2"), |x| out.push(x)); // descendant: replaces, no emit
        f.push(d("1"), |x| out.push(x)); // unrelated: emits 0.2
        f.finish(|x| out.push(x));
        assert_eq!(out, vec![d("0.2"), d("1")]);
    }

    #[test]
    fn eager_filter_empty() {
        let f = EagerFilter::new();
        let mut out = Vec::new();
        f.finish(|x| out.push(x));
        assert!(out.is_empty());
    }
}

//! The match step (Property 1 of the paper) and the eager ancestor filter
//! (Lemmas 1 and 2).

use crate::lists::{RankedList, StreamList};
use crate::stats::AlgoStats;
use xk_xmltree::Dewey;

/// Property 1 generalized: the deepest ancestor-or-self of `q` whose
/// subtree contains a node of the list — i.e. the single node of
/// `slca({q}, S)`. Computed from the left and right matches of `q`:
/// `deeper(lca(q, lm(q, S)), lca(q, rm(q, S)))`. Returns `None` iff the
/// list is empty.
pub fn deepest_dominator_ranked(
    list: &mut dyn RankedList,
    q: &Dewey,
    stats: &mut AlgoStats,
) -> Option<Dewey> {
    stats.match_lookups += 1;
    let rm = list.rm(q);
    if rm.as_deref_eq(q) {
        // Exact hit: q itself carries the keyword; nothing can be deeper.
        return Some(q.clone());
    }
    stats.match_lookups += 1;
    let lm = list.lm(q);
    let right = rm.map(|n| {
        stats.lca_computations += 1;
        q.lca(&n)
    });
    let left = lm.map(|n| {
        stats.lca_computations += 1;
        q.lca(&n)
    });
    deeper(left, right)
}

/// Small helper: `Option<Dewey>` equality against a probe without cloning.
trait OptDeweyEq {
    fn as_deref_eq(&self, q: &Dewey) -> bool;
}

impl OptDeweyEq for Option<Dewey> {
    fn as_deref_eq(&self, q: &Dewey) -> bool {
        self.as_ref() == Some(q)
    }
}

/// The paper's `deeper` function: both arguments are ancestors-or-self of
/// the same node (hence comparable); returns the descendant one. `None`
/// arguments are ignored.
pub fn deeper(a: Option<Dewey>, b: Option<Dewey>) -> Option<Dewey> {
    match (a, b) {
        (None, x) => x,
        (x, None) => x,
        (Some(a), Some(b)) => Some(if a.depth() >= b.depth() { a } else { b }),
    }
}

/// A forward-only scanning cursor over a [`StreamList`] that answers the
/// same "deepest dominator" question as [`deepest_dominator_ranked`], the
/// way the Scan Eager algorithm does: by advancing a cursor instead of
/// indexed lookups.
///
/// Probes arrive in the order the eager algorithms generate them. The
/// sequence is *not* strictly monotone: a later probe can be an ancestor
/// of the previous one (only ever an ancestor — see the module tests). In
/// that case any element the cursor already passed inside `[q, prev)` is a
/// descendant of `q`, so the match is `q` itself, and one remembered
/// element (`last_passed`) suffices for exact answers without rewinding.
pub struct ScanCursor<L: StreamList> {
    list: L,
    /// Next element the stream will yield (lookahead), if any.
    lookahead: Option<Dewey>,
    /// The largest element already consumed and strictly below the
    /// lookahead — the candidate left match.
    last_passed: Option<Dewey>,
    /// Largest probe seen, for the ancestor-probe fast path.
    last_probe: Option<Dewey>,
    exhausted_len: u64,
}

impl<L: StreamList> ScanCursor<L> {
    /// Wraps a rewound stream.
    pub fn new(mut list: L) -> ScanCursor<L> {
        list.rewind();
        let len = list.len();
        let lookahead = list.next_node();
        ScanCursor { list, lookahead, last_passed: None, last_probe: None, exhausted_len: len }
    }

    /// Number of nodes in the underlying list.
    pub fn len(&self) -> u64 {
        self.exhausted_len
    }

    /// True iff the underlying list is empty.
    pub fn is_empty(&self) -> bool {
        self.exhausted_len == 0
    }

    /// The deepest ancestor-or-self of `q` dominating the list, found by
    /// scanning. Returns `None` iff the list is empty.
    pub fn deepest_dominator(&mut self, q: &Dewey, stats: &mut AlgoStats) -> Option<Dewey> {
        if self.exhausted_len == 0 {
            return None;
        }
        if let Some(prev) = &self.last_probe {
            if q < prev {
                // Backward probe: q is an ancestor of the previous probe.
                // Anything already passed in [q, prev) is a descendant of
                // q, so q itself dominates the list.
                debug_assert!(q.is_ancestor_of(prev), "backward probes are ancestors");
                if self.last_passed.as_ref().is_some_and(|p| p >= q) {
                    return Some(q.clone());
                }
                // Otherwise nothing lies between: the cursor position is
                // still exactly rm(q) and last_passed is exactly lm(q).
                return self.match_from_position(q, stats);
            }
        }
        self.last_probe = Some(q.clone());
        // Advance the cursor to the first element >= q.
        while let Some(n) = &self.lookahead {
            if n >= q {
                break;
            }
            self.last_passed = self.lookahead.take();
            self.lookahead = self.list.next_node();
            stats.nodes_scanned += 1;
        }
        self.match_from_position(q, stats)
    }

    fn match_from_position(&self, q: &Dewey, stats: &mut AlgoStats) -> Option<Dewey> {
        if self.lookahead.as_ref() == Some(q) {
            return Some(q.clone());
        }
        let right = self.lookahead.as_ref().map(|n| {
            stats.lca_computations += 1;
            q.lca(n)
        });
        let left = self.last_passed.as_ref().map(|n| {
            stats.lca_computations += 1;
            q.lca(n)
        });
        deeper(left, right)
    }
}

/// The eager ancestor filter built on Lemmas 1 and 2 of the paper.
///
/// Candidates arrive in the order of their `S_1` witnesses. The filter
/// keeps a one-node frontier:
///
/// * Lemma 1 — a candidate `x` with `x <= frontier` is an ancestor (or
///   duplicate) of the frontier and is discarded;
/// * Lemma 2 — when `x > frontier` and the frontier is *not* an ancestor
///   of `x`, no later candidate can be a descendant of the frontier
///   either, so the frontier is confirmed as an SLCA immediately (this is
///   the "eagerness": results stream out before the input is exhausted).
#[derive(Debug, Default)]
pub struct EagerFilter {
    frontier: Option<Dewey>,
}

impl EagerFilter {
    /// Creates an empty filter.
    pub fn new() -> EagerFilter {
        EagerFilter { frontier: None }
    }

    /// Offers a candidate; `emit` receives any SLCA confirmed by it.
    pub fn push(&mut self, candidate: Dewey, mut emit: impl FnMut(Dewey)) {
        match self.frontier.take() {
            None => self.frontier = Some(candidate),
            Some(frontier) => {
                if candidate <= frontier {
                    // Lemma 1: candidate is an ancestor-or-duplicate.
                    self.frontier = Some(frontier);
                } else if frontier.is_ancestor_of(&candidate) {
                    self.frontier = Some(candidate);
                } else {
                    // Lemma 2: the frontier is an SLCA.
                    emit(frontier);
                    self.frontier = Some(candidate);
                }
            }
        }
    }

    /// Flushes the filter; the final frontier (if any) is an SLCA.
    pub fn finish(self, mut emit: impl FnMut(Dewey)) {
        if let Some(f) = self.frontier {
            emit(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::MemList;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn mem(items: &[&str]) -> MemList {
        MemList::new(items.iter().map(|s| d(s)).collect())
    }

    #[test]
    fn deeper_picks_descendant() {
        assert_eq!(deeper(Some(d("0.1")), Some(d("0.1.2"))), Some(d("0.1.2")));
        assert_eq!(deeper(Some(d("0.1.2")), Some(d("0.1"))), Some(d("0.1.2")));
        assert_eq!(deeper(None, Some(d("0"))), Some(d("0")));
        assert_eq!(deeper(Some(d("0")), None), Some(d("0")));
        assert_eq!(deeper(None, None), None);
    }

    #[test]
    fn ranked_match_basic() {
        let mut s = AlgoStats::default();
        let mut l = mem(&["0.0.5", "0.2.1"]);
        // q = 0.0.9: left match 0.0.5 shares prefix 0.0; right match 0.2.1
        // shares prefix 0.
        assert_eq!(deepest_dominator_ranked(&mut l, &d("0.0.9"), &mut s), Some(d("0.0")));
        // Exact membership returns q itself.
        assert_eq!(deepest_dominator_ranked(&mut l, &d("0.2.1"), &mut s), Some(d("0.2.1")));
        // Empty list: no dominator.
        let mut e = mem(&[]);
        assert_eq!(deepest_dominator_ranked(&mut e, &d("0"), &mut s), None);
    }

    #[test]
    fn ranked_match_counts_lookups() {
        let mut s = AlgoStats::default();
        let mut l = mem(&["0.0", "0.5"]);
        deepest_dominator_ranked(&mut l, &d("0.3"), &mut s);
        assert_eq!(s.match_lookups, 2); // one rm + one lm
        let mut s = AlgoStats::default();
        deepest_dominator_ranked(&mut l, &d("0.5"), &mut s);
        assert_eq!(s.match_lookups, 1); // exact rm hit short-circuits
    }

    #[test]
    fn scan_cursor_matches_ranked_on_monotone_probes() {
        let items = ["0.0.1", "0.1.4", "0.3", "0.5.2.1", "0.9"];
        let probes = ["0.0.0", "0.1.4", "0.2", "0.5.2", "0.9.1", "1.0"];
        let mut ranked = mem(&items);
        let mut cursor = ScanCursor::new(mem(&items));
        for p in probes {
            let mut s1 = AlgoStats::default();
            let mut s2 = AlgoStats::default();
            assert_eq!(
                cursor.deepest_dominator(&d(p), &mut s1),
                deepest_dominator_ranked(&mut ranked, &d(p), &mut s2),
                "probe {p}"
            );
        }
    }

    #[test]
    fn scan_cursor_handles_ancestor_backstep() {
        // Probe 0.4.2.7 first, then its ancestor 0.4: the cursor has
        // passed 0.4.1 (inside [0.4, 0.4.2.7)), so 0.4 dominates directly.
        let mut cursor = ScanCursor::new(mem(&["0.4.1", "0.8"]));
        let mut s = AlgoStats::default();
        assert_eq!(cursor.deepest_dominator(&d("0.4.2.7"), &mut s), Some(d("0.4")));
        assert_eq!(cursor.deepest_dominator(&d("0.4"), &mut s), Some(d("0.4")));
    }

    #[test]
    fn scan_cursor_backstep_with_nothing_passed() {
        // Probe 0.4.2.7 (nothing below it in the list), then ancestor 0.4:
        // no element lies in [0.4, 0.4.2.7), so matches are unchanged.
        let mut cursor = ScanCursor::new(mem(&["0.8"]));
        let mut s = AlgoStats::default();
        assert_eq!(cursor.deepest_dominator(&d("0.4.2.7"), &mut s), Some(d("0")));
        assert_eq!(cursor.deepest_dominator(&d("0.4"), &mut s), Some(d("0")));
    }

    #[test]
    fn scan_counts_scanned_nodes() {
        let mut cursor = ScanCursor::new(mem(&["0.0", "0.1", "0.2", "0.3"]));
        let mut s = AlgoStats::default();
        cursor.deepest_dominator(&d("0.2"), &mut s);
        assert_eq!(s.nodes_scanned, 2); // passed 0.0 and 0.1
    }

    #[test]
    fn eager_filter_school_example() {
        // Candidates for "John, Ben" on Figure 1 arrive per John witness;
        // a shallower repeat (the root) must be suppressed.
        let mut out = Vec::new();
        let mut f = EagerFilter::new();
        for c in ["0", "1", "2", "/"] {
            // class CS2A, class CS3A, project, then root (from the
            // John-only class whose deepest dominator is the root).
            let cand = d(c);
            f.push(cand, |x| out.push(x));
        }
        f.finish(|x| out.push(x));
        assert_eq!(out, vec![d("0"), d("1"), d("2")]);
    }

    #[test]
    fn eager_filter_replaces_ancestor_frontier() {
        let mut out = Vec::new();
        let mut f = EagerFilter::new();
        f.push(d("0"), |x| out.push(x)); // frontier 0
        f.push(d("0.2"), |x| out.push(x)); // descendant: replaces, no emit
        f.push(d("1"), |x| out.push(x)); // unrelated: emits 0.2
        f.finish(|x| out.push(x));
        assert_eq!(out, vec![d("0.2"), d("1")]);
    }

    #[test]
    fn eager_filter_empty() {
        let f = EagerFilter::new();
        let mut out = Vec::new();
        f.finish(|x| out.push(x));
        assert!(out.is_empty());
    }
}

//! Edge-case tests for the Stack algorithm's merge/stack machinery and
//! the keyword-count limits shared by all algorithms.

use xk_slca::{
    brute_force_slca, indexed_lookup_eager_collect, stack_merge_collect, MemList, RankedList,
    StreamList,
};
use xk_xmltree::Dewey;

fn d(s: &str) -> Dewey {
    s.parse().unwrap()
}

fn mem(items: &[&str]) -> MemList {
    MemList::new(items.iter().map(|s| d(s)).collect())
}

#[test]
fn sixty_four_keywords_is_supported() {
    // 64 lists, every one containing the same node: that node is the SLCA.
    let lists: Vec<MemList> = (0..64).map(|_| mem(&["0.1.2"])).collect();
    let (r, _) = stack_merge_collect(lists);
    assert_eq!(r, vec![d("0.1.2")]);
}

#[test]
#[should_panic(expected = "at most 64 keywords")]
fn sixty_five_keywords_is_rejected() {
    let lists: Vec<MemList> = (0..65).map(|_| mem(&["0"])).collect();
    stack_merge_collect(lists);
}

#[test]
fn zero_lists_yield_nothing() {
    let (r, _) = stack_merge_collect(Vec::<MemList>::new());
    assert!(r.is_empty());
}

#[test]
fn deep_chain_pops_correctly() {
    // A long root-to-leaf chain: keyword A at the leaf, keyword B at
    // every prefix. The SLCA is the leaf's parent... actually the leaf
    // itself dominates nothing of B, so the deepest node containing both
    // is the deepest B-ancestor of the A-leaf.
    let deep = "0.0.0.0.0.0.0.0.0.0";
    let prefixes: Vec<String> =
        (1..10).map(|n| deep.split('.').take(n).collect::<Vec<_>>().join(".")).collect();
    let prefix_refs: Vec<&str> = prefixes.iter().map(|s| s.as_str()).collect();
    let a = mem(&[deep]);
    let b = mem(&prefix_refs);
    let (r, stats) = stack_merge_collect(vec![a, b]);
    assert_eq!(r, vec![d("0.0.0.0.0.0.0.0.0")]); // deepest prefix
    assert_eq!(stats.stack_pushes, 10); // the chain is pushed once
}

#[test]
fn stack_agrees_with_oracle_on_shared_nodes_across_many_lists() {
    // Nodes appearing in several lists at once.
    let l1 = &["0.0", "0.5", "2"][..];
    let l2 = &["0.0", "1.1"][..];
    let l3 = &["0.0", "0.5", "1.1", "2"][..];
    let vecs: Vec<Vec<Dewey>> = [l1, l2, l3]
        .iter()
        .map(|l| {
            let mut v: Vec<Dewey> = l.iter().map(|s| d(s)).collect();
            v.sort();
            v
        })
        .collect();
    let expected = brute_force_slca(&vecs);
    let (r, _) = stack_merge_collect(vec![mem(l1), mem(l2), mem(l3)]);
    assert_eq!(r, expected);
    assert_eq!(r, vec![d("0.0"), Dewey::root()].into_iter().take(1).collect::<Vec<_>>());
}

#[test]
fn blanket_mut_impls_forward() {
    let mut l = mem(&["0", "1"]);
    {
        let r: &mut MemList = &mut l;
        assert_eq!(RankedList::len(&r), 2);
        assert_eq!(r.rm(&d("0.5")), Some(d("1")));
        assert_eq!(r.lm(&d("0.5")), Some(d("0")));
    }
    {
        let s: &mut MemList = &mut l;
        s.rewind();
        assert_eq!(StreamList::len(&s), 2);
        assert!(!StreamList::is_empty(&s));
        assert_eq!(s.next_node(), Some(d("0")));
    }
}

#[test]
fn il_and_stack_agree_on_adjacent_sibling_answers() {
    // Many sibling SLCAs in a row exercise the eager filter's Lemma 2
    // path and the stack's pop-emit path equally.
    let a: Vec<String> = (0..50).map(|i| format!("{i}.0")).collect();
    let b: Vec<String> = (0..50).map(|i| format!("{i}.1")).collect();
    let ar: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
    let br: Vec<&str> = b.iter().map(|s| s.as_str()).collect();
    let mut s1 = mem(&ar);
    let mut l2 = mem(&br);
    let mut refs: Vec<&mut dyn RankedList> = vec![&mut l2];
    let (il, _) = indexed_lookup_eager_collect(&mut s1, &mut refs);
    let (st, _) = stack_merge_collect(vec![mem(&ar), mem(&br)]);
    assert_eq!(il, st);
    assert_eq!(il.len(), 50);
}

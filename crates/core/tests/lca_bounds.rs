//! Cost-bound tests for the all-LCA algorithm (Section 5): each ancestor
//! of each SLCA is checked exactly once, and each check performs at most
//! `2k` match lookups — so the total lookup count is bounded by the IL
//! phase plus `2k · Σ depth(slca)`.

use xk_slca::{all_lcas_collect, indexed_lookup_eager_collect, MemList, RankedList};
use xk_xmltree::Dewey;

fn d(s: &str) -> Dewey {
    s.parse().unwrap()
}

fn mem(items: &[&str]) -> MemList {
    MemList::new(items.iter().map(|s| d(s)).collect())
}

#[test]
fn lookup_count_is_within_the_per_ancestor_bound() {
    // Many SLCAs scattered at depth 3 under distinct depth-1 groups.
    let a: Vec<String> = (0..30).map(|i| format!("{i}.0.0")).collect();
    let b: Vec<String> = (0..30).map(|i| format!("{i}.0.1")).collect();
    let ar: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
    let br: Vec<&str> = b.iter().map(|s| s.as_str()).collect();
    let k = 2u64;

    // Baseline: the IL phase alone.
    let il_lookups = {
        let mut s1 = mem(&ar);
        let mut l2 = mem(&br);
        let mut refs: Vec<&mut dyn RankedList> = vec![&mut l2];
        indexed_lookup_eager_collect(&mut s1, &mut refs).1.match_lookups
    };

    let mut s1 = mem(&ar);
    let mut owned = [mem(&ar), mem(&br)];
    let mut refs: Vec<&mut dyn RankedList> =
        owned.iter_mut().map(|l| l as &mut dyn RankedList).collect();
    let (lcas, stats) = all_lcas_collect(&mut s1, &mut refs);

    // The SLCAs are the 30 group-level nodes at depth 2; their ancestors
    // are 30 depth-1 nodes plus the root.
    let slcas: Vec<&Dewey> = lcas
        .iter()
        .filter(|(_, kind)| *kind == xk_slca::LcaKind::Smallest)
        .map(|(n, _)| n)
        .collect();
    assert_eq!(slcas.len(), 30);
    let total_ancestor_depth: u64 = slcas.iter().map(|s| s.depth() as u64).sum();

    let bound = il_lookups + 2 * k * total_ancestor_depth;
    assert!(
        stats.match_lookups <= bound,
        "lookups {} exceed bound {bound}",
        stats.match_lookups
    );
}

#[test]
fn shared_ancestors_are_checked_once() {
    // Ten SLCAs under ONE deep chain: the chain ancestors are shared and
    // must be charged once, not ten times.
    let a: Vec<String> = (0..10).map(|i| format!("0.0.0.{i}.0")).collect();
    let b: Vec<String> = (0..10).map(|i| format!("0.0.0.{i}.1")).collect();
    let ar: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
    let br: Vec<&str> = b.iter().map(|s| s.as_str()).collect();

    let mut s1 = mem(&ar);
    let mut owned = [mem(&ar), mem(&br)];
    let mut refs: Vec<&mut dyn RankedList> =
        owned.iter_mut().map(|l| l as &mut dyn RankedList).collect();
    let (lcas, stats) = all_lcas_collect(&mut s1, &mut refs);

    let slca_count =
        lcas.iter().filter(|(_, k)| *k == xk_slca::LcaKind::Smallest).count();
    assert_eq!(slca_count, 10);

    // Distinct ancestors: per SLCA 0.0.0.i (depth 4) the non-shared
    // ancestor set is empty except via lca partitioning; the shared path
    // 0.0.0 / 0.0 / 0 / root is 4 nodes; non-last SLCAs check nothing
    // above lca(x_i, x_{i+1}) = 0.0.0, i.e. exactly the depth-4 parent...
    // Here parents ARE the SLCAs' own ancestors at depth 3 = 0.0.0 is the
    // common parent (excluded for non-last). So checks = 4 (last SLCA's
    // path) and each check costs at most 2k = 4 lookups.
    let phase2_budget = 4 * 4;
    let il_lookups = {
        let mut s1 = mem(&ar);
        let mut l2 = mem(&br);
        let mut refs: Vec<&mut dyn RankedList> = vec![&mut l2];
        indexed_lookup_eager_collect(&mut s1, &mut refs).1.match_lookups
    };
    assert!(
        stats.match_lookups <= il_lookups + phase2_budget,
        "phase 2 re-checked shared ancestors: {} > {} + {}",
        stats.match_lookups,
        il_lookups,
        phase2_budget
    );
}

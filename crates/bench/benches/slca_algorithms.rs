//! Microbenchmarks of the four SLCA algorithms over in-memory keyword
//! lists — the algorithm-only costs, without storage effects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xk_slca::{
    brute_force_slca, indexed_lookup_eager_collect, scan_eager_collect, stack_merge_collect,
    MemList, RankedList,
};
use xk_xmltree::Dewey;

/// A list of `n` nodes spread over `groups` subtrees (depth 3), like
/// planted keywords over DBLP papers.
fn synthetic_list(n: usize, groups: u32, salt: u32) -> Vec<Dewey> {
    let mut v: Vec<Dewey> = (0..n as u32)
        .map(|i| Dewey::from_components(vec![i % groups, (salt + i / groups) % 7, i % 3]))
        .collect();
    v.sort();
    v.dedup();
    v
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("slca");
    group.sample_size(20);
    for (small, large) in [(16usize, 16_384usize), (1_024, 16_384), (16_384, 16_384)] {
        let s1 = synthetic_list(small, 600, 1);
        let s2 = synthetic_list(large, 600, 2);
        group.throughput(Throughput::Elements(small as u64));

        group.bench_function(
            BenchmarkId::new("indexed_lookup_eager", format!("{small}x{large}")),
            |b| {
                let mut a = MemList::from_sorted(s1.clone());
                let mut bl = MemList::from_sorted(s2.clone());
                b.iter(|| {
                    let mut refs: Vec<&mut dyn RankedList> = vec![&mut bl];
                    black_box(indexed_lookup_eager_collect(&mut a, &mut refs))
                })
            },
        );
        group.bench_function(BenchmarkId::new("scan_eager", format!("{small}x{large}")), |b| {
            let mut a = MemList::from_sorted(s1.clone());
            let mut bl = MemList::from_sorted(s2.clone());
            b.iter(|| black_box(scan_eager_collect(&mut a, vec![&mut bl])))
        });
        group.bench_function(BenchmarkId::new("stack", format!("{small}x{large}")), |b| {
            let mut a = MemList::from_sorted(s1.clone());
            let mut bl = MemList::from_sorted(s2.clone());
            b.iter(|| black_box(stack_merge_collect(vec![&mut a, &mut bl])))
        });
    }
    group.finish();

    // The brute-force oracle only at toy sizes (it is O(|S1|·|S2|)).
    let mut group = c.benchmark_group("slca_brute");
    group.sample_size(10);
    let s1 = synthetic_list(64, 40, 1);
    let s2 = synthetic_list(64, 40, 2);
    group.bench_function("brute_force_64x64", |b| {
        b.iter(|| black_box(brute_force_slca(&[s1.clone(), s2.clone()])))
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);

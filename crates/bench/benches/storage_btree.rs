//! Microbenchmarks of the storage substrate: B+tree bulk load versus
//! incremental inserts, point gets, match seeks, and list-chain scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xk_storage::{BTree, EnvOptions, ListReader, ListWriter, StorageEnv};

fn key(i: u32) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

fn env() -> StorageEnv {
    StorageEnv::in_memory(EnvOptions { page_size: 4096, pool_pages: 8192 })
}

fn bench_btree(c: &mut Criterion) {
    let n: u32 = 50_000;

    let mut group = c.benchmark_group("btree_build");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("bulk_load", n), |b| {
        b.iter(|| {
            let e = env();
            let entries = (0..n).map(|i| (key(i), Vec::new()));
            black_box(BTree::bulk_load(&e, 0, entries).unwrap())
        })
    });
    group.bench_function(BenchmarkId::new("insert_sorted", n), |b| {
        b.iter(|| {
            let e = env();
            let t = BTree::create(&e, 0).unwrap();
            for i in 0..n {
                t.insert(&e, &key(i), &[]).unwrap();
            }
            black_box(t)
        })
    });
    group.finish();

    // Read-side benches over a prebuilt tree.
    let e = env();
    let tree = BTree::bulk_load(&e, 0, (0..n).map(|i| (key(i * 2), key(i)))).unwrap();

    let mut group = c.benchmark_group("btree_read");
    group.sample_size(30);
    group.bench_function("point_get_hot", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(2654435761)) % n;
            black_box(tree.get(&e, &key(i * 2)).unwrap())
        })
    });
    group.bench_function("seek_ge_miss_hot", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(2654435761)) % n;
            // Odd keys are absent: every seek lands between entries.
            black_box(tree.seek_ge(&e, &key(i * 2 + 1)).unwrap())
        })
    });
    group.bench_function("full_cursor_scan", |b| {
        b.iter(|| {
            let mut cur = tree.cursor_first(&e).unwrap();
            let mut cnt = 0u64;
            while cur.read(&e).unwrap().is_some() {
                cnt += 1;
                cur.advance(&e).unwrap();
            }
            black_box(cnt)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("list_chain");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));
    let handle = {
        let mut w = ListWriter::new(&e);
        for i in 0..n {
            w.append(&e, &key(i)).unwrap();
        }
        w.finish(&e).unwrap()
    };
    group.bench_function("sequential_read", |b| {
        b.iter(|| {
            let mut r = ListReader::new(&handle);
            let mut cnt = 0u64;
            while r.next_record(&e).unwrap().is_some() {
                cnt += 1;
            }
            black_box(cnt)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_btree);
criterion_main!(benches);

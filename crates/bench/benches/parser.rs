//! Microbenchmarks of the XML substrate: parsing throughput, serializer,
//! the packed Dewey codec, and the two ablation points DESIGN.md calls
//! out (packed versus raw Dewey list representations).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xk_index::{encode_dewey, decode_dewey, LevelTable};
use xk_workload::{generate, DblpSpec};
use xk_xmltree::{parse, to_xml_string, Dewey, NodeId};

fn bench_parser(c: &mut Criterion) {
    let tree = generate(&DblpSpec { papers: 2_000, ..DblpSpec::default() });
    let xml = to_xml_string(&tree, NodeId::ROOT);

    let mut group = c.benchmark_group("xml");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("parse_dblp_2k_papers", |b| {
        b.iter(|| black_box(parse(&xml).unwrap()))
    });
    group.bench_function("serialize_dblp_2k_papers", |b| {
        b.iter(|| black_box(to_xml_string(&tree, NodeId::ROOT)))
    });
    group.finish();

    // Codec: pack/unpack every node of the document.
    let table = LevelTable::build(&tree);
    let deweys: Vec<Dewey> = tree.preorder().map(|n| tree.dewey(n)).collect();
    let packed: Vec<Vec<u8>> =
        deweys.iter().map(|d| encode_dewey(d, &table).unwrap()).collect();

    let mut group = c.benchmark_group("dewey_codec");
    group.sample_size(20);
    group.throughput(Throughput::Elements(deweys.len() as u64));
    group.bench_function("encode_all_nodes", |b| {
        b.iter(|| {
            for d in &deweys {
                black_box(encode_dewey(d, &table).unwrap());
            }
        })
    });
    group.bench_function("decode_all_nodes", |b| {
        b.iter(|| {
            for p in &packed {
                black_box(decode_dewey(p, &table).unwrap());
            }
        })
    });
    // Ablation: packed keys are compared directly; raw Deweys need the
    // component-wise comparison. This measures the comparison costs the
    // B+tree pays per probe.
    group.bench_function("compare_packed_memcmp", |b| {
        b.iter(|| {
            let mut ord = 0usize;
            for w in packed.windows(2) {
                if w[0] < w[1] {
                    ord += 1;
                }
            }
            black_box(ord)
        })
    });
    group.bench_function("compare_raw_components", |b| {
        b.iter(|| {
            let mut ord = 0usize;
            for w in deweys.windows(2) {
                if w[0] < w[1] {
                    ord += 1;
                }
            }
            black_box(ord)
        })
    });
    group.finish();

    // Ablation: storage footprint of packed vs raw lists (reported as a
    // one-off measurement, not a timing).
    let raw_bytes: usize = deweys.iter().map(|d| 4 * d.depth() + 8).sum();
    let packed_bytes: usize = packed.iter().map(|p| p.len()).sum();
    eprintln!(
        "[ablation] dewey storage: raw {} KiB vs packed {} KiB ({:.1}x smaller)",
        raw_bytes / 1024,
        packed_bytes / 1024,
        raw_bytes as f64 / packed_bytes as f64
    );
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);

//! Microbenchmarks of the match primitives: in-memory binary search
//! versus disk B+tree seeks (hot pool) for `lm`/`rm`, fresh descents
//! versus anchored cursors — the per-operation costs behind Table 1.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xk_index::{build_disk_index, DiskIndex, SharedEnv};
use xk_slca::{MemList, RankedList, StreamList};
use xk_storage::{EnvOptions, StorageEnv};
use xk_workload::{generate, DblpSpec, Planted};
use xk_xmltree::Dewey;

struct Fixture {
    env: SharedEnv,
    index: DiskIndex,
    mem: Vec<Dewey>,
    probes: Vec<Dewey>,
}

fn fixture() -> Fixture {
    let spec = DblpSpec {
        papers: 8_000,
        planted: vec![Planted { keyword: "needle".into(), frequency: 4_000 }],
        ..DblpSpec::default()
    };
    let tree = generate(&spec);
    let env = StorageEnv::in_memory(EnvOptions { page_size: 4096, pool_pages: 8192 });
    build_disk_index(&env, &tree, false).expect("index build");
    let index = DiskIndex::open(&env).expect("index open");
    let mem = xk_index::MemIndex::build(&tree)
        .keyword_list("needle")
        .expect("planted keyword")
        .to_vec();
    // Probes spread across the document.
    let probes: Vec<Dewey> = (0..512u32)
        .map(|i| Dewey::from_components(vec![i % 40, 1 + i % 14, (i * 7) % 200, 0]))
        .collect();
    Fixture { env: SharedEnv::new(env), index, mem, probes }
}

fn bench_match_ops(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("match_ops");
    group.sample_size(30);

    group.bench_function("mem_rm_lm", |b| {
        let mut list = MemList::from_sorted(f.mem.clone());
        b.iter(|| {
            for p in &f.probes {
                black_box(list.rm(p));
                black_box(list.lm(p));
            }
        })
    });

    group.bench_function("disk_rm_lm_hot", |b| {
        let mut list = f
            .index
            .ranked_list(f.env.clone(), "needle")
            .expect("planted keyword");
        b.iter(|| {
            for p in &f.probes {
                black_box(list.rm(p));
                black_box(list.lm(p));
            }
        })
    });

    group.bench_function("disk_rm_lm_anchored_sorted", |b| {
        // The Scan Eager access pattern: sorted probes through one
        // anchored cursor, so most seeks resolve inside the pinned leaf.
        let mut sorted_probes = f.probes.clone();
        sorted_probes.sort();
        let mut list = f
            .index
            .ranked_list(f.env.clone(), "needle")
            .expect("planted keyword")
            .anchored();
        b.iter(|| {
            for p in &sorted_probes {
                black_box(list.rm(p));
                black_box(list.lm(p));
            }
        })
    });

    group.bench_function("disk_stream_full_pass", |b| {
        b.iter(|| {
            let mut stream = f
                .index
                .stream_list(f.env.clone(), "needle")
                .expect("planted keyword");
            let mut n = 0u64;
            while let Some(d) = stream.next_node() {
                black_box(&d);
                n += 1;
            }
            black_box(n)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_match_ops);
criterion_main!(benches);

//! # xk-bench
//!
//! The benchmark harness that regenerates the paper's evaluation: the
//! `figures` binary reproduces Table 1 and Figures 8–13 (hot and cold
//! cache), and the Criterion benches under `benches/` microbenchmark the
//! algorithms, match operations, storage, and parser.
//!
//! Every suite binary (`figures`, `lookup_locality`,
//! `concurrency_scaling`, `server_loadgen`, `writepath`,
//! `checksum_overhead`) emits one machine-readable
//! `results/BENCH_<suite>.json` through the shared [`trial`] envelope;
//! the `bench_diff` binary validates those artifacts and compares fresh
//! runs against the checked-in baselines (`just bench-diff`).

pub mod corpus;
pub mod figures;
pub mod measure;
pub mod report;
pub mod trial;

pub use corpus::{corpus, Corpus, Scale};
pub use measure::{algorithms, run_point, Cache, Measurement};
pub use report::{Row, Table};
pub use trial::{Latency, Suite, Thresholds};

//! # xk-bench
//!
//! The benchmark harness that regenerates the paper's evaluation: the
//! `figures` binary reproduces Table 1 and Figures 8–13 (hot and cold
//! cache), and the Criterion benches under `benches/` microbenchmark the
//! algorithms, match operations, storage, and parser.

pub mod corpus;
pub mod figures;
pub mod measure;
pub mod report;

pub use corpus::{corpus, Corpus, Scale};
pub use measure::{algorithms, run_point, Cache, Measurement};
pub use report::{Row, Table};

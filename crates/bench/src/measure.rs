//! Measurement harness: runs a query set at one data point and aggregates
//! time, operation counts, and disk accesses, hot or cold, exactly the
//! way the paper's experiments report response time per query batch.

use std::time::Duration;
use xk_slca::AlgoStats;
use xk_storage::IoStats;
use xksearch::{Algorithm, Engine};

/// Buffer-pool temperature of a measurement (Figures 8–10 are hot,
/// 11–13 are cold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cache {
    /// The query stream runs once unmeasured to warm the pool, then the
    /// measured pass is served from memory.
    Hot,
    /// The pool is dropped before every query; each page access is a real
    /// read.
    Cold,
}

impl Cache {
    pub fn tag(self) -> &'static str {
        match self {
            Cache::Hot => "hot",
            Cache::Cold => "cold",
        }
    }
}

/// Aggregated measurement of one (algorithm, data point).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Number of queries measured.
    pub queries: usize,
    /// Mean wall-clock time per query.
    pub mean: Duration,
    /// Total results across the batch.
    pub results: u64,
    /// Summed operation counters.
    pub stats: AlgoStats,
    /// Summed I/O (disk_reads is the paper's disk-access count).
    pub io: IoStats,
}

impl Measurement {
    /// Mean time in milliseconds (the paper's y-axis).
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }

    /// Mean disk accesses per query.
    pub fn mean_disk_reads(&self) -> f64 {
        self.io.disk_reads as f64 / self.queries.max(1) as f64
    }
}

/// Runs `queries` with `algorithm` under the given cache regime.
pub fn run_point(
    engine: &Engine,
    queries: &[Vec<String>],
    algorithm: Algorithm,
    cache: Cache,
) -> Measurement {
    assert!(!queries.is_empty(), "a data point needs at least one query");
    if cache == Cache::Hot {
        // Warm-up pass (unmeasured).
        for q in queries {
            let kw: Vec<&str> = q.iter().map(|s| s.as_str()).collect();
            engine.query(&kw, algorithm).expect("warm-up query");
        }
    }
    let mut total = Duration::ZERO;
    let mut stats = AlgoStats::default();
    let mut io = IoStats::default();
    let mut results = 0u64;
    for q in queries {
        if cache == Cache::Cold {
            engine.clear_cache().expect("cache clear");
        }
        let kw: Vec<&str> = q.iter().map(|s| s.as_str()).collect();
        let out = engine.query(&kw, algorithm).expect("measured query");
        total += out.elapsed;
        stats.accumulate(&out.stats);
        results += out.slcas.len() as u64;
        io.accumulate(&out.io);
    }
    Measurement {
        queries: queries.len(),
        mean: total / queries.len() as u32,
        results,
        stats,
        io,
    }
}

/// The three algorithms every figure compares, with the paper's labels.
pub fn algorithms() -> [(&'static str, Algorithm); 3] {
    [
        ("IL", Algorithm::IndexedLookupEager),
        ("Scan", Algorithm::ScanEager),
        ("Stack", Algorithm::Stack),
    ]
}

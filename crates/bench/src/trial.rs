//! **xk-trial** — the shared bench-harness envelope every suite emits
//! through (ISSUE 7).
//!
//! One `results/BENCH_<suite>.json` per suite, all carrying the same
//! envelope — schema version, suite name, corpus scale, RNG seed, the
//! suite's wall configuration, and a git-revision placeholder — plus a
//! flat list of measured cases, each a bag of named numeric metrics
//! (throughput, p50/p99 latency, page reads, bytes/posting where
//! applicable). Because the envelope is uniform, `bench_diff` can
//! compare any fresh run against the checked-in baseline and turn a
//! perf delta into a reviewable failure.
//!
//! The pieces:
//!
//! * [`Suite`]/[`Case`] — the builder the bench bins populate;
//! * [`Suite::to_json`]/[`Suite::from_json`] — serialization over the
//!   server's hand-rolled [`JsonBuf`] writer and a minimal JSON reader
//!   (the workspace is std-only by design);
//! * [`Suite::validate`] — the schema gate CI runs on every emitted
//!   artifact;
//! * [`Latency`] — per-case latency aggregation through the *same*
//!   log₂ histogram the server's `/metrics` endpoint uses, so p50/p99
//!   extraction has one implementation (property-tested against exact
//!   quantiles in `crates/server/tests/proptest_metrics.rs`);
//! * [`diff`] — the regression comparison behind `just bench-diff`.
//!
//! [`JsonBuf`]: xk_server::json::JsonBuf

use std::path::{Path, PathBuf};
use std::time::Duration;
use xk_server::json::JsonBuf;
use xk_server::metrics::{Histogram, HistogramSnapshot};

/// The envelope schema this library reads and writes. Bump only with a
/// migration story for the checked-in baselines.
pub const SCHEMA: &str = "xk-trial/v1";

/// The corpus scales a suite may declare; comparisons across different
/// scales are refused rather than silently nonsensical.
pub const SCALES: [&str; 3] = ["smoke", "quick", "full"];

/// One benchmark suite's run: the envelope plus its measured cases.
#[derive(Debug, Clone, PartialEq)]
pub struct Suite {
    /// Suite name (`figures`, `writepath`, ...); also the artifact
    /// filename: `BENCH_<suite>.json`.
    pub suite: String,
    /// Corpus scale: one of [`SCALES`].
    pub scale: String,
    /// The RNG seed the run used (replay handle).
    pub seed: u64,
    /// Git revision placeholder: `XK_GIT_REV` env when set (CI passes
    /// the commit SHA), `"unknown"` otherwise — the file itself is
    /// checked in, so the reviewing diff supplies the revision either
    /// way.
    pub git_rev: String,
    /// The wall configuration of the run (page size, pool pages, paper
    /// counts, request budgets, ...), in insertion order.
    pub config: Vec<(String, f64)>,
    pub cases: Vec<Case>,
}

/// One measured data point: a stable id plus named numeric metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Stable identifier, `/`-separated by convention
    /// (`append/group_commit/writers=4`). Diffs match cases by id.
    pub id: String,
    /// Metrics in insertion order. Keys are snake_case; the suffix
    /// conventions in [`direction`] give each key a regression
    /// direction.
    pub metrics: Vec<(String, f64)>,
}

impl Case {
    /// Adds (or overwrites) one metric.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) -> &mut Case {
        let key = key.into();
        if let Some(slot) = self.metrics.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.metrics.push((key, value));
        }
        self
    }

    /// Adds the standard latency metrics from a [`Latency`] recorder.
    pub fn latency(&mut self, lat: &Latency) -> &mut Case {
        for (k, v) in lat.metrics() {
            self.metric(k, v);
        }
        self
    }

    /// Reads one metric back (tests, README table generation).
    pub fn get(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

impl Suite {
    /// A new suite envelope. `git_rev` is resolved from `XK_GIT_REV`.
    pub fn new(suite: impl Into<String>, scale: impl Into<String>, seed: u64) -> Suite {
        Suite {
            suite: suite.into(),
            scale: scale.into(),
            seed,
            git_rev: std::env::var("XK_GIT_REV").unwrap_or_else(|_| "unknown".into()),
            config: Vec::new(),
            cases: Vec::new(),
        }
    }

    /// Records one wall-config entry (page size, pool pages, ...).
    pub fn config(&mut self, key: impl Into<String>, value: f64) -> &mut Suite {
        self.config.push((key.into(), value));
        self
    }

    /// Returns the case with `id`, creating it if necessary.
    pub fn case(&mut self, id: impl Into<String>) -> &mut Case {
        let id = id.into();
        if let Some(i) = self.cases.iter().position(|c| c.id == id) {
            return &mut self.cases[i];
        }
        self.cases.push(Case { id, metrics: Vec::new() });
        self.cases.last_mut().expect("just pushed")
    }

    pub fn find(&self, id: &str) -> Option<&Case> {
        self.cases.iter().find(|c| c.id == id)
    }

    /// The artifact filename for this suite: `BENCH_<suite>.json`.
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.suite)
    }

    /// Renders the envelope as pretty-stable JSON (2-space indent, keys
    /// in fixed order) so checked-in baselines produce reviewable
    /// diffs.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_object();
        j.field_str("schema", SCHEMA);
        j.field_str("suite", &self.suite);
        j.field_str("scale", &self.scale);
        j.field_u64("seed", self.seed);
        j.field_str("git_rev", &self.git_rev);
        j.key("config").begin_object();
        for (k, v) in &self.config {
            j.field_f64(k, *v);
        }
        j.end_object();
        j.key("cases").begin_array();
        for case in &self.cases {
            j.begin_object();
            j.field_str("id", &case.id);
            j.key("metrics").begin_object();
            for (k, v) in &case.metrics {
                j.field_f64(k, *v);
            }
            j.end_object();
            j.end_object();
        }
        j.end_array();
        j.end_object();
        // Re-indent: JsonBuf writes compact JSON; the checked-in
        // baselines want line-per-case diffs.
        indent_json(j.as_str())
    }

    /// Parses an envelope, reporting the first structural error. Schema
    /// *conformance* beyond shape is [`Suite::validate`]'s job.
    pub fn from_json(text: &str) -> Result<Suite, String> {
        let v = parse_json(text)?;
        let obj = v.as_object().ok_or("top level must be an object")?;
        let field = |k: &str| -> Result<&Json, String> {
            obj.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {k:?}"))
        };
        let schema = field("schema")?.as_str().ok_or("schema must be a string")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?} is not {SCHEMA:?}"));
        }
        let suite = field("suite")?.as_str().ok_or("suite must be a string")?.to_string();
        let scale = field("scale")?.as_str().ok_or("scale must be a string")?.to_string();
        let seed = field("seed")?.as_f64().ok_or("seed must be a number")? as u64;
        let git_rev = field("git_rev")?.as_str().ok_or("git_rev must be a string")?.to_string();
        let config = field("config")?
            .as_object()
            .ok_or("config must be an object")?
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("config.{k} must be a number"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut cases = Vec::new();
        for (i, c) in field("cases")?
            .as_array()
            .ok_or("cases must be an array")?
            .iter()
            .enumerate()
        {
            let c = c.as_object().ok_or_else(|| format!("cases[{i}] must be an object"))?;
            let id = c
                .iter()
                .find(|(k, _)| k == "id")
                .and_then(|(_, v)| v.as_str())
                .ok_or_else(|| format!("cases[{i}].id must be a string"))?
                .to_string();
            let metrics = c
                .iter()
                .find(|(k, _)| k == "metrics")
                .and_then(|(_, v)| v.as_object())
                .ok_or_else(|| format!("cases[{i}].metrics must be an object"))?
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("cases[{i}].metrics.{k} must be a number"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            cases.push(Case { id, metrics });
        }
        Ok(Suite { suite, scale, seed, git_rev, config, cases })
    }

    /// Schema conformance beyond shape. Returns every violation (CI
    /// prints them all); an empty list means the artifact is valid.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let ident_ok = |s: &str| {
            !s.is_empty()
                && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        };
        if !ident_ok(&self.suite) {
            errs.push(format!("suite {:?} is not a snake_case identifier", self.suite));
        }
        if !SCALES.contains(&self.scale.as_str()) {
            errs.push(format!("scale {:?} is not one of {SCALES:?}", self.scale));
        }
        if self.git_rev.is_empty() {
            errs.push("git_rev must be non-empty".into());
        }
        if self.cases.is_empty() {
            errs.push("a suite must carry at least one case".into());
        }
        for (k, v) in &self.config {
            if !v.is_finite() {
                errs.push(format!("config.{k} is not finite"));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for case in &self.cases {
            if case.id.is_empty() {
                errs.push("case with empty id".into());
            }
            if !seen.insert(&case.id) {
                errs.push(format!("duplicate case id {:?}", case.id));
            }
            if case.metrics.is_empty() {
                errs.push(format!("case {:?} has no metrics", case.id));
            }
            for (k, v) in &case.metrics {
                if !ident_ok(k) {
                    errs.push(format!("case {:?}: metric key {k:?} is not snake_case", case.id));
                }
                if !v.is_finite() {
                    errs.push(format!("case {:?}: metric {k} is not finite", case.id));
                }
            }
        }
        errs
    }

    /// The derived long-format CSV (`case,metric,value`) — the one
    /// plot-friendly view, generated from the JSON so `results/` holds
    /// a single canonical format per suite.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("case,metric,value\n");
        for case in &self.cases {
            for (k, v) in &case.metrics {
                out.push_str(&format!("{},{},{}\n", case.id, k, v));
            }
        }
        out
    }

    /// Writes `BENCH_<suite>.json` plus the derived `<suite>.csv` into
    /// [`results_dir`] and returns the JSON path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let errs = self.validate();
        assert!(errs.is_empty(), "refusing to write an invalid suite: {errs:?}");
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let json_path = dir.join(self.filename());
        std::fs::write(&json_path, self.to_json())?;
        std::fs::write(dir.join(format!("{}.csv", self.suite)), self.to_csv())?;
        eprintln!("[trial] wrote {}", json_path.display());
        Ok(json_path)
    }
}

/// Where suite artifacts land: `XK_BENCH_OUT` when set (the
/// `bench-diff` flow points fresh runs at a scratch directory), else
/// `results/`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("XK_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|| "results".into())
}

/// Loads and shape-checks `BENCH_<suite>.json` files from a directory.
pub fn load_dir(dir: &Path) -> Result<Vec<Suite>, String> {
    let mut suites = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    for p in paths {
        let text =
            std::fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
        let suite = Suite::from_json(&text).map_err(|e| format!("{}: {e}", p.display()))?;
        suites.push(suite);
    }
    Ok(suites)
}

// ---------------------------------------------------------------------------
// Latency aggregation through the server's histogram.

/// A concurrent latency recorder for bench cases, backed by the same
/// log₂ [`Histogram`] that serves `/metrics` — one quantile
/// implementation across the server and the harness.
#[derive(Debug)]
pub struct Latency {
    hist: Histogram,
}

impl Default for Latency {
    fn default() -> Latency {
        Latency::new()
    }
}

impl Latency {
    pub fn new() -> Latency {
        // `Histogram::new()`, not `::default()`: only the former seeds
        // `min_us` to `u64::MAX` so the running minimum is correct.
        Latency { hist: Histogram::new() }
    }

    /// Records one sample; callable from any thread.
    pub fn record(&self, elapsed: Duration) {
        self.hist.record_us(elapsed.as_micros() as u64);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        self.hist.snapshot()
    }

    /// The standard latency metric set: count, mean, p50/p90/p99, max.
    /// Quantiles are the histogram's conservative upper-bound estimates
    /// (within one power-of-two bucket of the exact rank value).
    pub fn metrics(&self) -> Vec<(String, f64)> {
        let s = self.hist.snapshot();
        vec![
            ("samples".into(), s.count as f64),
            ("mean_us".into(), s.mean_us()),
            ("p50_us".into(), s.quantile_us(0.50) as f64),
            ("p90_us".into(), s.quantile_us(0.90) as f64),
            ("p99_us".into(), s.quantile_us(0.99) as f64),
            ("max_us".into(), s.max_us as f64),
        ]
    }
}

// ---------------------------------------------------------------------------
// Regression diffing.

/// What a metric key means for regressions, derived from the key's
/// suffix conventions so every suite gets diffing without per-suite
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latency / I/O / footprint: a higher fresh value is a regression.
    LowerIsBetter,
    /// Throughput / hit rates: a lower fresh value is a regression.
    HigherIsBetter,
    /// Descriptive (sample counts, totals): never a regression.
    Informational,
}

/// Classifies a metric key. Unknown keys are informational — a diff
/// never fails on a metric it does not understand.
pub fn direction(key: &str) -> Direction {
    let higher = ["_per_sec", "_per_fsync", "hit_rate", "mib_per_sec"];
    if higher.iter().any(|s| key.ends_with(s)) || key.starts_with("speedup") {
        return Direction::HigherIsBetter;
    }
    let lower_suffix = [
        "_us",
        "_ms",
        "_ns",
        "_reads",
        "_writes",
        "_evictions",
        "_per_page",
        "_per_lookup",
        "_lookups",
        "_scanned",
        "_computations",
    ];
    let lower_exact = ["bytes_per_posting", "overhead_pct"];
    if lower_suffix.iter().any(|s| key.ends_with(s))
        || lower_exact.contains(&key)
        || key.contains("latency")
        || key.contains("elapsed")
    {
        return Direction::LowerIsBetter;
    }
    Direction::Informational
}

/// True for exact operation counts (page reads, match lookups, nodes
/// scanned, ...): deterministic given the same corpus and seed, so a
/// diff can hold them to a much tighter ratio than wall-clock numbers,
/// which jitter by whole multiples at smoke scale.
pub fn is_count(key: &str) -> bool {
    let suffixes =
        ["_reads", "_writes", "_evictions", "_per_lookup", "_lookups", "_scanned", "_computations"];
    suffixes.iter().any(|s| key.ends_with(s)) || key == "bytes_per_posting"
}

/// Regression thresholds for [`diff`], all ratios of fresh to baseline.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// A lower-is-better metric regresses when
    /// `fresh > baseline * max_worse_ratio`.
    pub max_worse_ratio: f64,
    /// A higher-is-better metric regresses when
    /// `fresh < baseline * min_keep_ratio`.
    pub min_keep_ratio: f64,
    /// Values (both sides) at or below this are noise and never
    /// compared — sub-floor latencies jitter by whole multiples.
    pub abs_floor: f64,
    /// The gate for deterministic count metrics ([`is_count`]), applied
    /// symmetrically in place of `max_worse_ratio`/`min_keep_ratio`.
    /// Counts do not jitter, so this stays tight even when the
    /// wall-clock gate is widened for a noisy host.
    pub count_ratio: f64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            max_worse_ratio: 1.5,
            min_keep_ratio: 1.0 / 1.5,
            abs_floor: 0.0,
            count_ratio: 1.25,
        }
    }
}

/// One metric that crossed a threshold.
#[derive(Debug, Clone)]
pub struct Finding {
    pub case: String,
    pub metric: String,
    pub baseline: f64,
    pub fresh: f64,
    /// `fresh / baseline` (guarded against a zero baseline).
    pub ratio: f64,
}

/// The outcome of comparing one suite pair.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    pub suite: String,
    /// Why the pair was not comparable (scale mismatch); `None` when
    /// the comparison ran.
    pub skipped: Option<String>,
    /// Metric comparisons performed.
    pub checked: usize,
    /// Cases present in exactly one side (ids).
    pub unmatched: Vec<String>,
    pub regressions: Vec<Finding>,
    /// Threshold-crossing *improvements* (reported, never fatal).
    pub improvements: Vec<Finding>,
}

/// Compares `fresh` against `baseline` case by case. Only directional
/// metrics present on both sides are compared; a scale or suite
/// mismatch yields a skipped report rather than garbage ratios.
pub fn diff(baseline: &Suite, fresh: &Suite, t: &Thresholds) -> DiffReport {
    let mut report = DiffReport { suite: baseline.suite.clone(), ..DiffReport::default() };
    if baseline.suite != fresh.suite {
        report.skipped = Some(format!(
            "suite mismatch: baseline {:?} vs fresh {:?}",
            baseline.suite, fresh.suite
        ));
        return report;
    }
    if baseline.scale != fresh.scale {
        report.skipped = Some(format!(
            "scale mismatch: baseline {:?} vs fresh {:?} — rerun at the baseline scale",
            baseline.scale, fresh.scale
        ));
        return report;
    }
    for base_case in &baseline.cases {
        let Some(fresh_case) = fresh.find(&base_case.id) else {
            report.unmatched.push(format!("{} (baseline only)", base_case.id));
            continue;
        };
        for (key, base_v) in &base_case.metrics {
            let dir = direction(key);
            if dir == Direction::Informational {
                continue;
            }
            let Some(fresh_v) = fresh_case.get(key) else { continue };
            if base_v.max(fresh_v) <= t.abs_floor {
                continue;
            }
            report.checked += 1;
            let ratio = if *base_v > 0.0 {
                fresh_v / base_v
            } else if fresh_v > 0.0 {
                f64::INFINITY
            } else {
                1.0
            };
            let finding = || Finding {
                case: base_case.id.clone(),
                metric: key.clone(),
                baseline: *base_v,
                fresh: fresh_v,
                ratio,
            };
            let (worse, keep) = if is_count(key) {
                (t.count_ratio, 1.0 / t.count_ratio)
            } else {
                (t.max_worse_ratio, t.min_keep_ratio)
            };
            match dir {
                Direction::LowerIsBetter => {
                    if ratio > worse {
                        report.regressions.push(finding());
                    } else if ratio < keep {
                        report.improvements.push(finding());
                    }
                }
                Direction::HigherIsBetter => {
                    if ratio < keep {
                        report.regressions.push(finding());
                    } else if ratio > worse {
                        report.improvements.push(finding());
                    }
                }
                Direction::Informational => unreachable!("filtered above"),
            }
        }
    }
    for fresh_case in &fresh.cases {
        if baseline.find(&fresh_case.id).is_none() {
            report.unmatched.push(format!("{} (fresh only)", fresh_case.id));
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (objects, arrays, strings, numbers, bools, null).

/// A parsed JSON value. Object member order is preserved (the envelope
/// round-trips byte-stably through write → parse → write).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key at byte {} must be a string", *pos)),
                };
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|_| Json::Null),
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // byte boundaries are valid by construction).
                let s = &text_from(b)[*pos..];
                let c = s.chars().next().expect("non-empty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn text_from(b: &[u8]) -> &str {
    std::str::from_utf8(b).expect("parse_json input is a &str")
}

/// Two-space pretty-printing for the checked-in artifacts: one line per
/// scalar member, nested containers indented. Operates on writer output
/// (trusted JSON), not arbitrary text.
fn indent_json(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth: usize = 0;
    let mut in_str = false;
    let mut escaped = false;
    let newline = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    for c in compact.chars() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                depth += 1;
                newline(&mut out, depth);
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, depth);
            }
            ':' => out.push_str(": "),
            _ => out.push(c),
        }
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Suite {
        let mut s = Suite::new("writepath", "smoke", 0xD07A);
        s.config("page_size", 4096.0);
        s.config("appends", 64.0);
        s.case("append/group_commit/writers=4")
            .metric("appends_per_sec", 900.0)
            .metric("commits_per_fsync", 7.5)
            .metric("wal_commits", 64.0);
        s.case("read_latency/idle").metric("p50_us", 120.0).metric("p99_us", 900.0);
        s
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let s = sample();
        let parsed = Suite::from_json(&s.to_json()).expect("round trip");
        assert_eq!(parsed, s);
        // And stable: render → parse → render is byte-identical.
        assert_eq!(parsed.to_json(), s.to_json());
    }

    #[test]
    fn validate_catches_schema_violations() {
        let mut s = sample();
        assert!(s.validate().is_empty(), "{:?}", s.validate());
        s.scale = "huge".into();
        s.case("read_latency/idle").metric("p50_us", f64::NAN);
        s.cases.push(Case { id: "read_latency/idle".into(), metrics: vec![] });
        let errs = s.validate();
        assert!(errs.iter().any(|e| e.contains("scale")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("not finite")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("duplicate case id")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("no metrics")), "{errs:?}");
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_shapes() {
        assert!(Suite::from_json("[]").is_err());
        assert!(Suite::from_json(r#"{"schema":"xk-trial/v0"}"#)
            .unwrap_err()
            .contains("xk-trial/v1"));
        let mut s = sample().to_json();
        s = s.replace("\"seed\": 53370", "\"seed\": \"x\"");
        assert!(Suite::from_json(&s).is_err());
    }

    #[test]
    fn direction_classification() {
        assert_eq!(direction("appends_per_sec"), Direction::HigherIsBetter);
        assert_eq!(direction("hit_rate"), Direction::HigherIsBetter);
        assert_eq!(direction("speedup_vs_1"), Direction::HigherIsBetter);
        assert_eq!(direction("commits_per_fsync"), Direction::HigherIsBetter);
        assert_eq!(direction("p99_us"), Direction::LowerIsBetter);
        assert_eq!(direction("mean_ms"), Direction::LowerIsBetter);
        assert_eq!(direction("disk_reads"), Direction::LowerIsBetter);
        assert_eq!(direction("logical_reads"), Direction::LowerIsBetter);
        assert_eq!(direction("bytes_per_posting"), Direction::LowerIsBetter);
        assert_eq!(direction("ns_per_page"), Direction::LowerIsBetter);
        assert_eq!(direction("reads_per_lookup"), Direction::LowerIsBetter);
        assert_eq!(direction("match_lookups"), Direction::LowerIsBetter);
        assert_eq!(direction("nodes_scanned"), Direction::LowerIsBetter);
        assert_eq!(direction("lca_computations"), Direction::LowerIsBetter);
        assert_eq!(direction("wal_commits"), Direction::Informational);
        assert_eq!(direction("samples"), Direction::Informational);

        // Operation counts are deterministic; wall-clock numbers are not.
        assert!(is_count("disk_reads") && is_count("match_lookups") && is_count("reads_per_lookup"));
        assert!(!is_count("p99_us") && !is_count("mean_ms") && !is_count("appends_per_sec"));
        assert!(!is_count("ns_per_page"), "ns_per_page is a timing, not a count");
    }

    /// Counts get the tight symmetric gate even when the wall-clock gate
    /// is widened for a noisy host.
    #[test]
    fn count_metrics_keep_the_tight_gate_under_wide_thresholds() {
        let mut baseline = Suite::new("x", "smoke", 1);
        baseline.case("a").metric("disk_reads", 100.0).metric("mean_ms", 1.0);
        let mut fresh = baseline.clone();
        fresh.case("a").metric("disk_reads", 140.0).metric("mean_ms", 1.4);
        let wide = Thresholds { max_worse_ratio: 4.0, min_keep_ratio: 0.25, ..Thresholds::default() };
        let report = diff(&baseline, &fresh, &wide);
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert_eq!(report.regressions[0].metric, "disk_reads"); // 1.4x > 1.25x count gate
    }

    /// The acceptance self-test: an artificially injected 2× latency
    /// regression must be detected at the default thresholds.
    #[test]
    fn diff_detects_injected_2x_latency_regression() {
        let baseline = sample();
        let mut fresh = baseline.clone();
        for case in &mut fresh.cases {
            for (k, v) in &mut case.metrics {
                if direction(k) == Direction::LowerIsBetter && (k.ends_with("_us")) {
                    *v *= 2.0;
                }
            }
        }
        let report = diff(&baseline, &fresh, &Thresholds::default());
        assert!(report.skipped.is_none());
        assert_eq!(report.regressions.len(), 2, "{:?}", report.regressions);
        assert!(report
            .regressions
            .iter()
            .all(|f| f.metric.ends_with("_us") && (f.ratio - 2.0).abs() < 1e-9));
        // The unchanged throughput metrics did not fire.
        assert!(report.improvements.is_empty());
    }

    #[test]
    fn diff_detects_throughput_loss_and_reports_improvements() {
        let baseline = sample();
        let mut fresh = baseline.clone();
        fresh.case("append/group_commit/writers=4").metric("appends_per_sec", 300.0);
        fresh.case("read_latency/idle").metric("p99_us", 90.0); // 10× better
        let report = diff(&baseline, &fresh, &Thresholds::default());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "appends_per_sec");
        assert_eq!(report.improvements.len(), 1);
        assert_eq!(report.improvements[0].metric, "p99_us");
    }

    #[test]
    fn diff_refuses_scale_mismatch_and_reports_unmatched_cases() {
        let baseline = sample();
        let mut fresh = baseline.clone();
        fresh.scale = "full".into();
        assert!(diff(&baseline, &fresh, &Thresholds::default()).skipped.is_some());

        let mut fresh = baseline.clone();
        fresh.cases.remove(0);
        fresh.case("new_case").metric("p50_us", 1.0);
        let report = diff(&baseline, &fresh, &Thresholds::default());
        assert!(report.skipped.is_none());
        assert_eq!(report.unmatched.len(), 2, "{:?}", report.unmatched);
    }

    #[test]
    fn abs_floor_suppresses_noise() {
        let mut baseline = Suite::new("x", "smoke", 1);
        baseline.case("a").metric("p50_us", 2.0);
        let mut fresh = baseline.clone();
        fresh.case("a").metric("p50_us", 6.0); // 3×, but tiny
        let t = Thresholds { abs_floor: 10.0, ..Thresholds::default() };
        assert!(diff(&baseline, &fresh, &t).regressions.is_empty());
        assert!(!diff(&baseline, &fresh, &Thresholds::default()).regressions.is_empty());
    }

    #[test]
    fn csv_is_derived_from_cases() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("case,metric,value\n"));
        assert!(csv.contains("append/group_commit/writers=4,appends_per_sec,900"));
        assert!(csv.contains("read_latency/idle,p99_us,900"));
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let v = parse_json(r#"{"a\n":"bA\\", "n": [1, -2.5e1, true, null]}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a\n");
        assert_eq!(obj[0].1.as_str(), Some("bA\\"));
        let arr = obj[1].1.as_array().unwrap();
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
    }
}

//! The experiment definitions for every evaluation artifact in the paper:
//! Table 1 and Figures 8–13 (Figures 11–13 are the cold-cache runs of
//! 8–10, selected via [`Cache`]).

use crate::corpus::Corpus;
use crate::measure::{algorithms, run_point, Cache, Measurement};
use crate::report::{Row, Table};
use xk_workload::{FrequencyClass, QuerySampler};

fn seed_for(figure: &str, sub: usize, x: usize) -> u64 {
    // Deterministic but distinct per data point.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in figure.bytes().chain([sub as u8, 1, x as u8]) {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

fn point(
    corpus: &Corpus,
    queries: &[Vec<String>],
    cache: Cache,
) -> Vec<(String, Measurement)> {
    algorithms()
        .into_iter()
        .map(|(name, algo)| (name.to_string(), run_point(&corpus.engine, queries, algo, cache)))
        .collect()
}

/// **Figure 8 / Figure 11**: two keywords, the small list's frequency
/// fixed per subfigure (10, 100, 1000), the large list's frequency swept
/// across the ladder.
pub fn fig8(corpus: &Corpus, cache: Cache) -> Vec<Table> {
    let figure = if cache == Cache::Hot { "fig8" } else { "fig11" };
    let n = corpus.scale.queries_per_point();
    let mut tables = Vec::new();
    for (sub, small) in [10usize, 100, 1_000].into_iter().enumerate() {
        let small_class = corpus.class(small);
        let mut rows = Vec::new();
        for (xi, large) in corpus.scale.frequencies().into_iter().enumerate() {
            if large < small {
                continue;
            }
            let mut sampler = QuerySampler::new(seed_for(figure, sub, xi));
            let queries = sample_two_lists(&mut sampler, small_class, corpus.class(large), n);
            rows.push(Row { x: large.to_string(), series: point(corpus, &queries, cache) });
        }
        tables.push(Table {
            id: format!("{figure}{}_{}", (b'b' + sub as u8) as char, cache.tag()),
            title: format!(
                "#keywords=2, small frequency={small}, varying large frequency ({} cache)",
                cache.tag()
            ),
            x_label: "large |S|".to_string(),
            rows,
        });
    }
    tables
}

/// Samples `n` two-keyword queries with one keyword from each class,
/// handling the diagonal case where both classes are the same.
fn sample_two_lists(
    sampler: &mut QuerySampler,
    small: &FrequencyClass,
    large: &FrequencyClass,
    n: usize,
) -> Vec<Vec<String>> {
    if small.frequency == large.frequency {
        sampler.sample_many(&[(small, 2)], n)
    } else {
        sampler.sample_many(&[(small, 1), (large, 1)], n)
    }
}

/// **Figure 9 / Figure 12**: the number of keywords swept 2–5; one list
/// has the subfigure's small frequency (10, 100, 1000, 10000) and the
/// remaining `k−1` lists all have the corpus's largest frequency.
pub fn fig9(corpus: &Corpus, cache: Cache) -> Vec<Table> {
    let figure = if cache == Cache::Hot { "fig9" } else { "fig12" };
    let n = corpus.scale.queries_per_point();
    let large = corpus.scale.large();
    let large_class = corpus.class(large);
    let mut tables = Vec::new();
    let smalls: Vec<usize> = [10usize, 100, 1_000, 10_000]
        .into_iter()
        .filter(|&s| s < large)
        .collect();
    for (sub, small) in smalls.into_iter().enumerate() {
        let small_class = corpus.class(small);
        let mut rows = Vec::new();
        for k in 2usize..=5 {
            let needed_large = k - 1;
            if needed_large > large_class.keywords.len() {
                continue;
            }
            let mut sampler = QuerySampler::new(seed_for(figure, sub, k));
            let queries =
                sampler.sample_many(&[(small_class, 1), (large_class, needed_large)], n);
            rows.push(Row { x: format!("k={k}"), series: point(corpus, &queries, cache) });
        }
        tables.push(Table {
            id: format!("{figure}{}_{}", (b'a' + sub as u8) as char, cache.tag()),
            title: format!(
                "frequencies=({small}, {large}), varying #keywords ({} cache)",
                cache.tag()
            ),
            x_label: "#keywords".to_string(),
            rows,
        });
    }
    tables
}

/// **Figure 10 / Figure 13**: the number of keywords swept 2–5, all
/// keyword lists having the same size (10, 100, 1000, 10000 per
/// subfigure).
pub fn fig10(corpus: &Corpus, cache: Cache) -> Vec<Table> {
    let figure = if cache == Cache::Hot { "fig10" } else { "fig13" };
    let n = corpus.scale.queries_per_point();
    let mut tables = Vec::new();
    let freqs: Vec<usize> = [10usize, 100, 1_000, 10_000]
        .into_iter()
        .filter(|f| corpus.scale.frequencies().contains(f))
        .collect();
    for (sub, freq) in freqs.into_iter().enumerate() {
        let class = corpus.class(freq);
        let mut rows = Vec::new();
        for k in 2usize..=5 {
            if k > class.keywords.len() {
                continue;
            }
            let mut sampler = QuerySampler::new(seed_for(figure, sub, k));
            let queries = sampler.sample_many(&[(class, k)], n);
            rows.push(Row { x: format!("k={k}"), series: point(corpus, &queries, cache) });
        }
        tables.push(Table {
            id: format!("{figure}{}_{}", (b'a' + sub as u8) as char, cache.tag()),
            title: format!(
                "all keyword lists of size {freq}, varying #keywords ({} cache)",
                cache.tag()
            ),
            x_label: "#keywords".to_string(),
            rows,
        });
    }
    tables
}

/// **Ablation (this reproduction)**: buffer-pool size versus the cost of
/// a 40-query stream started cold — quantifies the caching assumption
/// behind the paper's disk-access analysis (non-leaf B-tree nodes
/// resident in memory). Small pools evict the hot upper levels between
/// queries; past a few hundred pages the stream converges to the hot
/// regime.
pub fn ablation_pool(corpus: &Corpus) -> Table {
    use xk_storage::EnvOptions;
    use xksearch::Engine;

    let small = corpus.scale.frequencies()[0];
    let large = corpus.scale.large();
    let n = corpus.scale.queries_per_point();
    let mut sampler = QuerySampler::new(seed_for("ablation_pool", 0, 0));
    let queries =
        sampler.sample_many(&[(corpus.class(small), 1), (corpus.class(large), 1)], n);

    let mut rows = Vec::new();
    for pool_pages in [16usize, 64, 256, 1024, 4096, 16384] {
        let engine = Engine::open(
            &corpus.db_path,
            EnvOptions { page_size: 4096, pool_pages },
        )
        .expect("reopen corpus with sized pool");
        let series = algorithms()
            .into_iter()
            .map(|(name, algo)| {
                engine.clear_cache().expect("cold start");
                // One continuous stream (no clearing between queries):
                // the pool size now governs cross-query locality.
                (name.to_string(), run_point(&engine, &queries, algo, Cache::Hot))
            })
            .collect();
        rows.push(Row { x: format!("{pool_pages}p"), series });
    }
    Table {
        id: "ablation_pool".into(),
        title: format!(
            "buffer-pool size vs warm-stream cost, query=({small}, {large}), k=2"
        ),
        x_label: "pool pages".into(),
        rows,
    }
}

/// **Ablation (this reproduction)**: the eager buffer size β of the
/// paper's Algorithm 1. The paper: "the smaller β is, the faster the
/// algorithm produces the first SLCA", while total work is β-invariant.
/// Measured: time to first emitted SLCA and total time, for β from 1 to
/// |S1|, at frequencies (|S1| = second-largest class, |S2| = largest).
pub fn ablation_beta(corpus: &Corpus) -> String {
    use std::fmt::Write;
    use std::time::{Duration, Instant};
    use xk_slca::{indexed_lookup_eager_buffered, RankedList};

    let freqs = corpus.scale.frequencies();
    let small = freqs[freqs.len() - 2];
    let large = corpus.scale.large();
    let mut sampler = QuerySampler::new(seed_for("ablation_beta", 0, 0));
    let query = sampler.sample(&[(corpus.class(small), 1), (corpus.class(large), 1)]);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== ablation_beta — eager buffer size, |S1|={small}, |S2|={large} =="
    );
    let _ = writeln!(out, "{:<10} {:>16} {:>14} {:>10}", "beta", "first SLCA µs", "total ms", "results");
    for beta in [1usize, 4, 16, 64, 256, small] {
        // Warm pass.
        corpus.engine.query(&[&query[0], &query[1]], xksearch::Algorithm::IndexedLookupEager)
            .expect("warm query");
        let mut s1 = corpus.engine.stream_list(&query[0]).expect("planted keyword");
        let mut other = corpus.engine.ranked_list(&query[1]).expect("planted keyword");
        let mut refs: Vec<&mut dyn RankedList> = vec![&mut other];
        let started = Instant::now();
        let mut first: Option<Duration> = None;
        let mut results = 0u64;
        indexed_lookup_eager_buffered(&mut s1, &mut refs, beta, |_| {}, |_| {
            results += 1;
            if first.is_none() {
                first = Some(started.elapsed());
            }
        });
        let total = started.elapsed();
        let _ = writeln!(
            out,
            "{:<10} {:>16.1} {:>14.3} {:>10}",
            beta,
            first.map_or(f64::NAN, |d| d.as_secs_f64() * 1e6),
            total.as_secs_f64() * 1e3,
            results
        );
    }
    out
}

/// **Table 1**: the per-algorithm cost summary — measured match
/// operations, scanned nodes, and disk accesses next to the analytic
/// formulas, at the paper's canonical skewed point (|S1|=1000,
/// |S2|=largest).
pub fn table1(corpus: &Corpus) -> String {
    use std::fmt::Write;
    let small = 1_000.min(corpus.scale.large() / 10);
    let large = corpus.scale.large();
    let n = corpus.scale.queries_per_point();
    let mut sampler = QuerySampler::new(seed_for("table1", 0, 0));
    let queries =
        sample_two_lists(&mut sampler, corpus.class(small), corpus.class(large), n);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== table1 — per-query operation counts at |S1|={small}, |S2|={large}, k=2 =="
    );
    let _ = writeln!(
        out,
        "{:<8} {:>14} {:>14} {:>14} {:>12} {:>10}",
        "algo", "lookups/q", "scanned/q", "lca-comps/q", "diskRd/q", "ms/q"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>14} {:>14} {:>14} {:>12} {:>10}",
        "(bound)", "2(k-1)|S1|", "Σ|Si|", "", "|S1|log|S2| vs Σ|Si|/B", ""
    );
    for (name, algo) in algorithms() {
        // Cold for honest disk-access counts.
        let m = run_point(&corpus.engine, &queries, algo, Cache::Cold);
        let q = m.queries as u64;
        let _ = writeln!(
            out,
            "{:<8} {:>14} {:>14} {:>14} {:>12.1} {:>10.3}",
            name,
            m.stats.match_lookups / q,
            m.stats.nodes_scanned / q,
            m.stats.lca_computations / q,
            m.mean_disk_reads(),
            m.mean_ms()
        );
    }
    let _ = writeln!(
        out,
        "analytic: 2(k-1)|S1| = {}, Σ|Si| = {}",
        2 * small,
        small + large
    );
    out
}

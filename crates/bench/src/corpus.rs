//! Experiment corpora: the synthetic stand-in for the paper's 83 MB
//! grouped DBLP snapshot, with every frequency class the evaluation
//! needs, indexed once and cached on disk across harness runs.

use std::path::PathBuf;
use xk_storage::EnvOptions;
use xk_workload::{generate, planted_for_classes, DblpSpec, FrequencyClass};
use xksearch::Engine;

/// Corpus scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale frequencies: classes 10 … 100 000 over 120 000 papers.
    Full,
    /// One-tenth scale for local iteration: classes 10 … 10 000 over
    /// 12 000 papers; the sweeps stop one decade earlier.
    Quick,
    /// CI-sized: classes 10 … 1 000 over 1 200 papers, 5 queries per
    /// point. Seconds end to end; the committed `results/BENCH_*.json`
    /// baselines are produced at this scale so `just bench-diff` can
    /// rerun them anywhere.
    Smoke,
}

impl Scale {
    /// The frequency ladder this scale supports (the x-axis of Figure 8).
    pub fn frequencies(self) -> Vec<usize> {
        match self {
            Scale::Full => vec![10, 100, 1_000, 10_000, 100_000],
            Scale::Quick => vec![10, 100, 1_000, 10_000],
            Scale::Smoke => vec![10, 100, 1_000],
        }
    }

    /// The largest frequency (the paper's "large keyword list").
    pub fn large(self) -> usize {
        *self.frequencies().last().expect("non-empty ladder")
    }

    /// Queries per data point (the paper runs 40).
    pub fn queries_per_point(self) -> usize {
        match self {
            Scale::Full => 40,
            Scale::Quick => 10,
            Scale::Smoke => 5,
        }
    }

    fn papers(self) -> usize {
        match self {
            Scale::Full => 120_000,
            Scale::Quick => 12_000,
            Scale::Smoke => 1_200,
        }
    }

    /// The scale name — also the `scale` field of the trial envelope.
    pub fn tag(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Quick => "quick",
            Scale::Smoke => "smoke",
        }
    }
}

/// A built corpus: the engine over the index file plus the frequency
/// classes available for query sampling.
pub struct Corpus {
    pub engine: Engine,
    pub classes: Vec<FrequencyClass>,
    pub scale: Scale,
    /// The index file, for experiments that reopen it with different
    /// environment options (e.g. the pool-size ablation).
    pub db_path: PathBuf,
}

impl Corpus {
    /// The class with the given exact frequency.
    pub fn class(&self, frequency: usize) -> &FrequencyClass {
        self.classes
            .iter()
            .find(|c| c.frequency == frequency)
            .unwrap_or_else(|| panic!("no frequency class {frequency} in this corpus"))
    }
}

/// Class sizes: enough distinct keywords for 5 same-frequency lists
/// (Figure 10's k=5) while keeping the planted volume reasonable.
fn class_count(frequency: usize) -> usize {
    match frequency {
        f if f >= 100_000 => 5,
        f if f >= 10_000 => 6,
        _ => 8,
    }
}

/// Builds (or reopens from `cache_dir`) the corpus for `scale`.
pub fn corpus(scale: Scale, cache_dir: &std::path::Path) -> Corpus {
    let classes: Vec<FrequencyClass> = scale
        .frequencies()
        .into_iter()
        .map(|f| FrequencyClass::new(f, class_count(f)))
        .collect();

    std::fs::create_dir_all(cache_dir).expect("create cache dir");
    let db: PathBuf = cache_dir.join(format!("corpus_{}.db", scale.tag()));
    let options = EnvOptions { page_size: 4096, pool_pages: 16_384 }; // 64 MiB pool

    if db.exists() {
        if let Ok(engine) = Engine::open(&db, options.clone()) {
            // Sanity: the cached index must contain the planted classes.
            let probe = &classes[0].keywords[0];
            if engine.index().frequency(probe) == classes[0].frequency as u64 {
                eprintln!("[corpus] reusing cached index {}", db.display());
                return Corpus { engine, classes, scale, db_path: db };
            }
        }
        // xk-analyze: allow(swallowed_result, reason = "stale cache removal is best-effort; the rebuild truncates on create")
        std::fs::remove_file(&db).ok();
    }

    eprintln!(
        "[corpus] generating {} papers with {} planted keywords ...",
        scale.papers(),
        classes.iter().map(|c| c.keywords.len()).sum::<usize>()
    );
    let spec = DblpSpec {
        papers: scale.papers(),
        venues: 40,
        years_per_venue: 15,
        vocabulary: 20_000,
        title_words: 5,
        authors_per_paper: 2,
        planted: planted_for_classes(&classes),
        seed: 0x51CA,
    };
    let started = std::time::Instant::now();
    let tree = generate(&spec);
    eprintln!(
        "[corpus] document has {} nodes (depth {}), generated in {:.1?}",
        tree.len(),
        tree.max_depth(),
        started.elapsed()
    );
    let started = std::time::Instant::now();
    let engine = Engine::build(&tree, &db, options, false).expect("index build");
    engine.with_env(|e| e.flush()).expect("flush");
    eprintln!(
        "[corpus] indexed {} keywords in {:.1?} -> {}",
        engine.index().keyword_count(),
        started.elapsed(),
        db.display()
    );
    Corpus { engine, classes, scale, db_path: db }
}

//! Durable write path benchmark: append throughput under
//! `SyncEachCommit` vs `GroupCommit`, the group-commit batch size
//! (commits per fsync), crash-recovery time over a full WAL, and read
//! latency with and without a concurrent writer.
//!
//! Emits `results/BENCH_writepath.json` through the shared
//! `xk_bench::trial` envelope and prints a human summary to stderr.
//!
//! Usage: `writepath [--smoke] [--appends N] [--queries N]`

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xk_bench::trial::{Latency, Suite};
use xk_storage::EnvOptions;
use xk_workload::{generate, planted_for_classes, DblpSpec, FrequencyClass};
use xk_xmltree::Dewey;
use xksearch::{Algorithm, CommitMode, DurabilityOptions, Engine};

const PAGE_SIZE: usize = 4096;
const POOL_PAGES: usize = 4096; // 16 MiB

struct Config {
    papers: usize,
    appends: usize,
    queries: usize,
    scale: &'static str,
}

fn options() -> EnvOptions {
    EnvOptions { page_size: PAGE_SIZE, pool_pages: POOL_PAGES }
}

fn durability(mode: CommitMode) -> DurabilityOptions {
    DurabilityOptions { mode, ..DurabilityOptions::default() }
}

/// Builds the seed index once; each measurement copies it to a private
/// working file so every mode starts from identical bytes.
fn build_seed(dir: &Path, cfg: &Config, classes: &[FrequencyClass]) -> PathBuf {
    let db = dir.join(format!("writepath_seed_{}.db", cfg.scale));
    let spec = DblpSpec {
        papers: cfg.papers,
        venues: 8,
        years_per_venue: 5,
        vocabulary: 4_000,
        title_words: 5,
        authors_per_paper: 2,
        planted: planted_for_classes(classes),
        seed: 0xD07A,
    };
    let tree = generate(&spec);
    eprintln!("[writepath] seed document: {} nodes", tree.len());
    // Built directly (not via Engine::build) for two write-path needs:
    // the stored document is the graft target for appends, and the
    // append sweeps fan the root far beyond the generated fanout, so the
    // Dewey level table gets generous width headroom.
    // xk-analyze: allow(swallowed_result, reason = "removing a stale seed is best-effort; create truncates")
    std::fs::remove_file(&db).ok();
    let env = xk_storage::StorageEnv::create(&db, options()).expect("create seed env");
    xk_index::build_disk_index_with(
        &env,
        &tree,
        &xk_index::BuildOptions {
            store_document: true,
            level_headroom_bits: 12,
            extra_levels: 2,
            ..Default::default()
        },
    )
    .expect("seed index build");
    env.flush().expect("flush seed");
    db
}

/// A private copy of the seed with no WAL next to it.
fn working_copy(seed: &Path, tag: &str) -> PathBuf {
    let db = seed.with_file_name(format!("writepath_{tag}.db"));
    std::fs::copy(seed, &db).expect("copy seed db");
    // xk-analyze: allow(swallowed_result, reason = "a missing WAL from a previous run is the desired state")
    std::fs::remove_file(xksearch::default_wal_path(&db)).ok();
    db
}

fn fragment(writer: usize, i: usize) -> String {
    format!("<paper><title>writebench w{writer}n{i}</title><author>appender</author></paper>")
}

struct AppendPoint {
    mode: &'static str,
    writers: usize,
    appends: usize,
    elapsed: Duration,
    wal_commits: u64,
    wal_syncs: u64,
}

/// `writers` threads share `cfg.appends` appends through one engine;
/// returns the throughput point with the WAL's commit/sync counters.
fn bench_appends(seed: &Path, cfg: &Config, mode: CommitMode, writers: usize) -> AppendPoint {
    let tag = format!("{}_{writers}w", mode_tag(mode));
    let db = working_copy(seed, &tag);
    let (engine, _) = Engine::open_durable(&db, options(), durability(mode)).expect("open");
    let engine = Arc::new(engine);
    let per_writer = cfg.appends / writers;
    let started = Instant::now();
    std::thread::scope(|s| {
        for w in 0..writers {
            let engine = Arc::clone(&engine);
            s.spawn(move || {
                for i in 0..per_writer {
                    engine
                        .append_subtree(&Dewey::root(), &fragment(w, i))
                        .expect("bench append");
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let point = AppendPoint {
        mode: mode_tag(mode),
        writers,
        appends: per_writer * writers,
        elapsed,
        wal_commits: engine.with_env(|e| e.wal_commit_count()),
        wal_syncs: engine.with_env(|e| e.wal_sync_count()),
    };
    eprintln!(
        "[writepath] {:>16} x{writers}: {:>8.1} appends/s ({} commits / {} fsyncs = {:.1} per fsync)",
        point.mode,
        point.appends as f64 / elapsed.as_secs_f64(),
        point.wal_commits,
        point.wal_syncs,
        point.wal_commits as f64 / point.wal_syncs.max(1) as f64,
    );
    point
}

fn mode_tag(mode: CommitMode) -> &'static str {
    match mode {
        CommitMode::SyncEachCommit => "sync_each_commit",
        CommitMode::GroupCommit => "group_commit",
    }
}

/// Fills a WAL with `cfg.appends` committed transactions, "crashes"
/// (no checkpoint, no clean shutdown), and times the recovery replay
/// that the next `open_durable` runs.
fn bench_recovery(seed: &Path, cfg: &Config) -> (usize, Duration) {
    let db = working_copy(seed, "recovery");
    let (engine, _) =
        Engine::open_durable(&db, options(), durability(CommitMode::SyncEachCommit))
            .expect("open for recovery fill");
    for i in 0..cfg.appends {
        engine.append_subtree(&Dewey::root(), &fragment(0, i)).expect("fill append");
    }
    std::mem::forget(engine); // crash: Drop would checkpoint the WAL away
    let started = Instant::now();
    let (_engine, report) =
        Engine::open_durable(&db, options(), durability(CommitMode::SyncEachCommit))
            .expect("recovery open");
    let elapsed = started.elapsed();
    eprintln!(
        "[writepath] recovery: {} txns replayed in {:.1?}",
        report.replayed_txns, elapsed
    );
    (report.replayed_txns, elapsed)
}

struct LatencyPoint {
    latency: Latency,
    writer_appends: u64,
}

/// Per-query latency over the planted two-keyword workload, optionally
/// with a writer thread streaming appends the whole time. Samples go
/// through the shared trial histogram, so the reported p50/p99 use the
/// same extraction as the server's `/metrics`.
fn bench_read_latency(
    seed: &Path,
    cfg: &Config,
    classes: &[FrequencyClass],
    with_writer: bool,
) -> LatencyPoint {
    let tag = if with_writer { "reads_writer" } else { "reads_idle" };
    let db = working_copy(seed, tag);
    let (engine, _) = Engine::open_durable(&db, options(), durability(CommitMode::GroupCommit))
        .expect("open for reads");
    let engine = Arc::new(engine);
    let keywords: Vec<&str> = classes
        .iter()
        .map(|c| c.keywords[0].as_str())
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let appended = Arc::new(AtomicU64::new(0));
    let latency = Latency::new();
    std::thread::scope(|s| {
        if with_writer {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let appended = Arc::clone(&appended);
            s.spawn(move || {
                let mut i = 0;
                while !stop.load(Ordering::Relaxed) {
                    engine
                        .append_subtree(&Dewey::root(), &fragment(9, i))
                        .expect("background append");
                    appended.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        // Alternate the planted pairs so both frequency classes are hit.
        for i in 0..cfg.queries {
            let pair = [keywords[i % keywords.len()], keywords[(i + 1) % keywords.len()]];
            let started = Instant::now();
            engine.query(&pair, Algorithm::Auto).expect("read query");
            latency.record(started.elapsed());
        }
        stop.store(true, Ordering::Relaxed);
    });
    let point = LatencyPoint { latency, writer_appends: appended.load(Ordering::Relaxed) };
    let snap = point.latency.snapshot();
    eprintln!(
        "[writepath] reads ({}): p50 {}us p99 {}us{}",
        if with_writer { "concurrent writer" } else { "idle" },
        snap.quantile_us(0.50),
        snap.quantile_us(0.99),
        if with_writer {
            format!(" ({} appends committed meanwhile)", point.writer_appends)
        } else {
            String::new()
        }
    );
    point
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse::<usize>().unwrap_or_else(|_| panic!("{name} takes a number")))
    };
    let cfg = Config {
        papers: if smoke { 500 } else { 5_000 },
        appends: flag("--appends").unwrap_or(if smoke { 64 } else { 512 }),
        queries: flag("--queries").unwrap_or(if smoke { 200 } else { 2_000 }),
        scale: if smoke { "smoke" } else { "full" },
    };
    let classes = vec![FrequencyClass::new(10, 2), FrequencyClass::new(100, 2)];

    let dir = Path::new("bench_cache");
    std::fs::create_dir_all(dir).expect("create bench_cache/");
    let seed = build_seed(dir, &cfg, &classes);

    let mut points = Vec::new();
    for (mode, writers) in [
        (CommitMode::SyncEachCommit, 1),
        (CommitMode::SyncEachCommit, 4),
        (CommitMode::GroupCommit, 1),
        (CommitMode::GroupCommit, 4),
    ] {
        points.push(bench_appends(&seed, &cfg, mode, writers));
    }
    let (replayed, recovery_elapsed) = bench_recovery(&seed, &cfg);
    let idle = bench_read_latency(&seed, &cfg, &classes, false);
    let busy = bench_read_latency(&seed, &cfg, &classes, true);

    let mut suite = Suite::new("writepath", cfg.scale, 0xD07A);
    suite
        .config("papers", cfg.papers as f64)
        .config("page_size", PAGE_SIZE as f64)
        .config("pool_pages", POOL_PAGES as f64)
        .config("appends", cfg.appends as f64)
        .config("queries", cfg.queries as f64);
    for p in &points {
        suite
            .case(format!("append/{}/writers={}", p.mode, p.writers))
            .metric("appends", p.appends as f64)
            .metric("elapsed_ms", p.elapsed.as_secs_f64() * 1e3)
            .metric("appends_per_sec", p.appends as f64 / p.elapsed.as_secs_f64())
            .metric("wal_commits", p.wal_commits as f64)
            .metric("wal_syncs", p.wal_syncs as f64)
            .metric("commits_per_fsync", p.wal_commits as f64 / p.wal_syncs.max(1) as f64);
    }
    suite
        .case("recovery/replay")
        .metric("replayed_txns", replayed as f64)
        .metric("elapsed_ms", recovery_elapsed.as_secs_f64() * 1e3);
    suite.case("read_latency/idle").latency(&idle.latency);
    suite
        .case("read_latency/with_writer")
        .latency(&busy.latency)
        .metric("writer_appends", busy.writer_appends as f64);
    suite.write().expect("write BENCH_writepath.json");
}

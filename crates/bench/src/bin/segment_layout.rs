//! Measures what the packed segment layout buys over the posting
//! B+trees: bytes per posting on disk, and cold page reads for the
//! skewed two-keyword query that drives Indexed Lookup Eager's `lm`/`rm`
//! probe loop.
//!
//! The same generated DBLP corpus is built twice with identical
//! `EnvOptions` and no embedded document:
//!
//! - **btree**: the classic layout — postings in per-keyword B+trees
//!   inside the database file.
//! - **segment**: the structural index only, postings sealed into one
//!   immutable XKSEG1 blob (prefix-delta + varint Dewey encoding).
//!
//! Because the segmented database file *is* the structural-only index,
//! `btree_db_bytes - segment_db_bytes` isolates the bytes the posting
//! B+trees occupy; the blob directory's total size is the segment
//! counterpart. Both are divided by the same posting count.
//!
//! ```text
//! segment_layout [--smoke]
//! ```
//!
//! Emits `results/BENCH_segment_layout.json` through the shared
//! `xk_bench::trial` envelope. The run asserts the headline acceptance
//! bound inline: segments must pack postings into **at most half** the
//! bytes the B+trees use.

use std::path::Path;
use xk_bench::trial::Suite;
use xk_storage::EnvOptions;
use xk_workload::{generate, DblpSpec, Planted};
use xksearch::{default_segments_dir, Algorithm, Engine};

struct RunConfig {
    papers: usize,
    s1_size: usize,
    s2_size: usize,
}

fn dir_bytes(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .filter(|m| m.is_file())
        .map(|m| m.len())
        .sum()
}

struct Probe {
    slcas: usize,
    match_lookups: u64,
    logical_reads: u64,
    disk_reads: u64,
    block_reads: u64,
    elapsed_us: u64,
}

/// One cold run of the skewed pair through Indexed Lookup Eager: every
/// `S_1` witness probes the big `S_2` list, so the read counters capture
/// exactly the layout's probe locality.
fn probe(engine: &Engine, keywords: &[&str]) -> Probe {
    engine.clear_cache().expect("cache clear");
    let blocks_before = engine.segment_block_reads();
    let out = engine.query(keywords, Algorithm::IndexedLookupEager).expect("query");
    Probe {
        slcas: out.slcas.len(),
        match_lookups: out.stats.match_lookups,
        logical_reads: out.io.logical_reads,
        disk_reads: out.io.disk_reads,
        block_reads: engine.segment_block_reads() - blocks_before,
        elapsed_us: out.elapsed.as_micros() as u64,
    }
}

fn main() {
    let mut smoke = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    let cfg = if smoke {
        RunConfig { papers: 2_500, s1_size: 50, s2_size: 2_000 }
    } else {
        RunConfig { papers: 100_000, s1_size: 1_000, s2_size: 100_000 }
    };

    let spec = DblpSpec {
        papers: cfg.papers,
        planted: vec![
            Planted { keyword: "s1a".into(), frequency: cfg.s1_size },
            Planted { keyword: "s2".into(), frequency: cfg.s2_size },
        ],
        ..DblpSpec::default()
    };
    eprintln!("generating {} papers ...", cfg.papers);
    let tree = generate(&spec);

    let dir = std::env::temp_dir().join(format!("xk-seglayout-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let options = EnvOptions { page_size: 4096, pool_pages: 16_384 };

    // Neither build embeds the document: the files then contain index
    // structure + postings and nothing else.
    eprintln!("building B+tree layout ...");
    let btree_db = dir.join("btree.db");
    let btree = Engine::build(&tree, &btree_db, options.clone(), false).unwrap();
    btree.with_env(|e| e.flush()).unwrap();
    eprintln!("building segment layout ...");
    let seg_db = dir.join("segment.db");
    let seg = Engine::build_segmented(&tree, &seg_db, options.clone(), false).unwrap();
    seg.with_env(|e| e.flush()).unwrap();

    let metas = seg.segment_metas();
    let postings: u64 = metas.iter().map(|m| m.postings).sum();
    assert!(postings > 0, "generated corpus produced no postings");
    let btree_bytes = std::fs::metadata(&btree_db).unwrap().len();
    let seg_db_bytes = std::fs::metadata(&seg_db).unwrap().len();
    let blob_bytes = dir_bytes(&default_segments_dir(&seg_db));
    assert!(blob_bytes > 0, "segment build left no blobs");
    // The segmented db file is the structural index alone, so the file
    // size difference is exactly the posting B+trees' footprint.
    let btree_posting_bytes = btree_bytes.saturating_sub(seg_db_bytes);
    let btree_bpp = btree_posting_bytes as f64 / postings as f64;
    let seg_bpp = blob_bytes as f64 / postings as f64;

    let mut suite = Suite::new("segment_layout", if smoke { "smoke" } else { "full" }, 0x5E6);
    suite
        .config("papers", cfg.papers as f64)
        .config("s1_size", cfg.s1_size as f64)
        .config("s2_size", cfg.s2_size as f64)
        .config("page_size", 4096.0)
        .config("pool_pages", 16_384.0)
        .config("postings", postings as f64);

    suite
        .case("layout/btree")
        .metric("bytes_per_posting", btree_bpp)
        .metric("posting_bytes", btree_posting_bytes as f64)
        .metric("file_bytes", btree_bytes as f64);
    suite
        .case("layout/segment")
        .metric("bytes_per_posting", seg_bpp)
        .metric("posting_bytes", blob_bytes as f64)
        .metric("file_bytes", seg_db_bytes as f64)
        .metric("blobs", metas.len() as f64);
    println!(
        "{postings} postings: btree {btree_bpp:.2} B/posting ({btree_posting_bytes} B), \
         segment {seg_bpp:.2} B/posting ({blob_bytes} B), {:.2}x smaller",
        btree_bpp / seg_bpp
    );

    // Cold probe loop: same skewed pair, both layouts, Indexed Lookup
    // Eager so |S1| probes hit the big S2 list.
    let keywords = ["s1a", "s2"];
    let pb = probe(&btree, &keywords);
    let ps = probe(&seg, &keywords);
    assert_eq!(pb.slcas, ps.slcas, "layouts disagreed on the SLCA set");
    assert_eq!(pb.match_lookups, ps.match_lookups, "layouts disagreed on probe count");
    // Segment blob reads bypass the buffer pool, so the comparable
    // "pages touched cold" figure is env reads plus blob block reads.
    let btree_total = pb.logical_reads;
    let seg_total = ps.logical_reads + ps.block_reads;
    suite
        .case("probe/btree")
        .metric("match_lookups", pb.match_lookups as f64)
        .metric("logical_reads", pb.logical_reads as f64)
        .metric("disk_reads", pb.disk_reads as f64)
        .metric("total_reads", btree_total as f64)
        .metric("reads_per_lookup", btree_total as f64 / pb.match_lookups.max(1) as f64)
        .metric("elapsed_us", pb.elapsed_us as f64);
    suite
        .case("probe/segment")
        .metric("match_lookups", ps.match_lookups as f64)
        .metric("logical_reads", ps.logical_reads as f64)
        .metric("disk_reads", ps.disk_reads as f64)
        .metric("block_reads", ps.block_reads as f64)
        .metric("total_reads", seg_total as f64)
        .metric("reads_per_lookup", seg_total as f64 / ps.match_lookups.max(1) as f64)
        .metric("elapsed_us", ps.elapsed_us as f64);
    println!(
        "cold probes ({} lookups): btree {} reads, segment {} reads \
         ({} env + {} blob blocks)",
        pb.match_lookups, btree_total, seg_total, ps.logical_reads, ps.block_reads
    );

    // The headline acceptance bound, checked on every run.
    assert!(
        seg_bpp * 2.0 <= btree_bpp,
        "segments must use at most half the bytes per posting \
         (segment {seg_bpp:.2} vs btree {btree_bpp:.2})"
    );

    suite.write().expect("write BENCH_segment_layout.json");
    std::fs::remove_dir_all(&dir).unwrap();
}

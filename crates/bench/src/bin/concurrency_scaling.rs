//! Concurrency scaling: batch query throughput at 1, 2, 4, and 8 worker
//! threads, hot and cold cache, over the DBLP corpus.
//!
//! Emits `results/BENCH_concurrency_scaling.json` through the shared
//! `xk_bench::trial` envelope — one case per (cache, threads) point
//! carrying queries_per_sec and speedup_vs_1.
//!
//! Every batch is also checked for correctness: each query's SLCA set at
//! N threads must equal its single-threaded answer, so the numbers are
//! only reported for runs the differential check passed.
//!
//! Usage: `concurrency_scaling [--smoke] [--quick] [--queries N]`

use std::time::Instant;
use xk_bench::trial::Suite;
use xk_bench::{corpus, Scale};
use xk_workload::QuerySampler;
use xksearch::Algorithm;

const THREAD_POINTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let queries_n = args
        .iter()
        .position(|a| a == "--queries")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--queries takes a number"))
        .unwrap_or(scale.queries_per_point());

    let c = corpus(scale, std::path::Path::new("bench_cache"));
    let engine = &c.engine;

    // The paper's 40-query workload shape: two keywords, a low- and a
    // mid-frequency class, so Auto exercises both IL and Scan Eager.
    let mut sampler = QuerySampler::new(0xC0C0);
    let requirements = [(c.class(10), 1usize), (c.class(1_000), 1usize)];
    let queries = sampler.sample_many(&requirements, queries_n);

    // Single-threaded reference answers (hot) for the differential check.
    engine.clear_cache().expect("clear cache");
    let reference: Vec<_> = engine
        .query_batch(&queries, Algorithm::Auto, 1)
        .into_iter()
        .map(|r| r.expect("reference query").slcas)
        .collect();

    let mut suite = Suite::new("concurrency_scaling", scale.tag(), 0xC0C0);
    suite.config("queries", queries.len() as f64);
    for cache in ["hot", "cold"] {
        let mut base_qps = 0.0f64;
        for &threads in &THREAD_POINTS {
            if cache == "cold" {
                engine.clear_cache().expect("clear cache");
            } else {
                // Warm the pool with one unmeasured pass.
                for r in engine.query_batch(&queries, Algorithm::Auto, threads) {
                    r.expect("warmup query");
                }
            }
            let started = Instant::now();
            let results = engine.query_batch(&queries, Algorithm::Auto, threads);
            let elapsed = started.elapsed();
            for (i, r) in results.iter().enumerate() {
                let out = r.as_ref().expect("measured query");
                assert_eq!(
                    out.slcas, reference[i],
                    "query {i} at {threads} threads diverged from single-threaded answer"
                );
            }
            let qps = queries.len() as f64 / elapsed.as_secs_f64();
            if threads == 1 {
                base_qps = qps;
            }
            let speedup = qps / base_qps.max(f64::MIN_POSITIVE);
            eprintln!(
                "[{cache}] {threads} thread(s): {:>8.1} q/s ({:.2}x vs 1 thread)",
                qps, speedup
            );
            suite
                .case(format!("cache={cache}/threads={threads}"))
                .metric("queries", queries.len() as f64)
                .metric("total_ms", elapsed.as_secs_f64() * 1e3)
                .metric("queries_per_sec", qps)
                .metric("speedup_vs_1", speedup);
        }
    }
    suite.write().expect("write BENCH_concurrency_scaling.json");
}

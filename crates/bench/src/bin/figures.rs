//! Regenerates the paper's evaluation artifacts.
//!
//! ```text
//! figures [--quick] [--results DIR] [table1|fig8|...|fig13|ablation|all]...
//! ```
//!
//! * `fig8`–`fig10` are the hot-cache experiments, `fig11`–`fig13` their
//!   cold-cache twins (buffer pool dropped before every query).
//! * `--quick` runs a one-tenth-scale corpus (largest list 10 000, ten
//!   queries per point) for smoke testing; the default is the full
//!   paper-scale ladder up to 100 000.
//!
//! CSV series land in the results directory (default `results/`); the
//! corpus index is cached in `results/cache/` across runs.

use std::path::PathBuf;
use xk_bench::{corpus, figures, Cache, Scale, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut results_dir = PathBuf::from("results");
    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--results" => {
                i += 1;
                results_dir = PathBuf::from(args.get(i).expect("--results needs a value"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [--quick] [--results DIR] \
                     [table1|fig8|...|fig13|ablation|all]..."
                );
                return;
            }
            other => selected.push(other.to_string()),
        }
        i += 1;
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = ["table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "ablation"]
            .map(String::from)
            .to_vec();
    }

    let cache_dir = results_dir.join("cache");
    let corpus = corpus(scale, &cache_dir);
    let started = std::time::Instant::now();

    for experiment in &selected {
        let tables: Vec<Table> = match experiment.as_str() {
            "table1" => {
                let text = figures::table1(&corpus);
                print!("{text}");
                std::fs::create_dir_all(&results_dir).expect("results dir");
                std::fs::write(results_dir.join("table1.txt"), &text).expect("write table1");
                continue;
            }
            "fig8" => figures::fig8(&corpus, Cache::Hot),
            "fig9" => figures::fig9(&corpus, Cache::Hot),
            "fig10" => figures::fig10(&corpus, Cache::Hot),
            "fig11" => figures::fig8(&corpus, Cache::Cold),
            "fig12" => figures::fig9(&corpus, Cache::Cold),
            "fig13" => figures::fig10(&corpus, Cache::Cold),
            "ablation" => {
                let text = figures::ablation_beta(&corpus);
                print!("{text}");
                std::fs::create_dir_all(&results_dir).expect("results dir");
                std::fs::write(results_dir.join("ablation_beta.txt"), &text)
                    .expect("write ablation_beta");
                vec![figures::ablation_pool(&corpus)]
            }
            other => {
                eprintln!("unknown experiment {other:?}, skipping");
                continue;
            }
        };
        for t in &tables {
            print!("{}", t.to_text());
            t.write_csv(&results_dir).expect("write csv");
        }
    }
    eprintln!("\n[figures] done in {:.1?}", started.elapsed());
}

//! Regenerates the paper's evaluation artifacts.
//!
//! ```text
//! figures [--smoke] [--quick] [--results DIR] [table1|fig8|...|fig13|ablation|all]...
//! ```
//!
//! * `fig8`–`fig10` are the hot-cache experiments, `fig11`–`fig13` their
//!   cold-cache twins (buffer pool dropped before every query).
//! * `--quick` runs a one-tenth-scale corpus (largest list 10 000, ten
//!   queries per point); `--smoke` a CI-sized one (largest list 1 000,
//!   five queries per point). The default is the full paper-scale ladder
//!   up to 100 000.
//!
//! Every figure series lands in one `results/BENCH_figures.json`
//! artifact through the shared `xk_bench::trial` envelope (one case per
//! figure/x/algorithm point; the plottable CSV is derived from it).
//! `table1` and the β-ablation stay as aligned text files — they are
//! narrative tables, not regression-tracked series.

use std::path::PathBuf;
use xk_bench::trial::Suite;
use xk_bench::{corpus, figures, Cache, Scale, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut results_dir: Option<PathBuf> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--results" => {
                i += 1;
                results_dir = Some(PathBuf::from(args.get(i).expect("--results needs a value")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [--smoke] [--quick] [--results DIR] \
                     [table1|fig8|...|fig13|ablation|all]..."
                );
                return;
            }
            other => selected.push(other.to_string()),
        }
        i += 1;
    }
    // `--results` keeps working as an alias for the trial output dir.
    if let Some(dir) = &results_dir {
        std::env::set_var("XK_BENCH_OUT", dir);
    }
    let results_dir = results_dir.unwrap_or_else(xk_bench::trial::results_dir);
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = ["table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "ablation"]
            .map(String::from)
            .to_vec();
    }

    let cache_dir = results_dir.join("cache");
    let corpus = corpus(scale, &cache_dir);
    let started = std::time::Instant::now();

    let mut suite = Suite::new("figures", scale.tag(), 0x51CA);
    suite
        .config("queries_per_point", scale.queries_per_point() as f64)
        .config("largest_frequency", scale.large() as f64)
        .config("page_size", 4096.0)
        .config("pool_pages", 16_384.0);
    for experiment in &selected {
        let tables: Vec<Table> = match experiment.as_str() {
            "table1" => {
                let text = figures::table1(&corpus);
                print!("{text}");
                // The text artifacts are full-scale paper outputs;
                // smoke/quick runs (CI, bench-all) must not clobber
                // the committed full-scale versions in results/.
                if matches!(scale, Scale::Full) {
                    std::fs::create_dir_all(&results_dir).expect("results dir");
                    std::fs::write(results_dir.join("table1.txt"), &text).expect("write table1");
                }
                continue;
            }
            "fig8" => figures::fig8(&corpus, Cache::Hot),
            "fig9" => figures::fig9(&corpus, Cache::Hot),
            "fig10" => figures::fig10(&corpus, Cache::Hot),
            "fig11" => figures::fig8(&corpus, Cache::Cold),
            "fig12" => figures::fig9(&corpus, Cache::Cold),
            "fig13" => figures::fig10(&corpus, Cache::Cold),
            "ablation" => {
                let text = figures::ablation_beta(&corpus);
                print!("{text}");
                if matches!(scale, Scale::Full) {
                    std::fs::create_dir_all(&results_dir).expect("results dir");
                    std::fs::write(results_dir.join("ablation_beta.txt"), &text)
                        .expect("write ablation_beta");
                }
                vec![figures::ablation_pool(&corpus)]
            }
            other => {
                eprintln!("unknown experiment {other:?}, skipping");
                continue;
            }
        };
        for t in &tables {
            print!("{}", t.to_text());
            t.record(&mut suite);
        }
    }
    if !suite.cases.is_empty() {
        suite.write().expect("write BENCH_figures.json");
    }
    eprintln!("\n[figures] done in {:.1?}", started.elapsed());
}

//! HTTP load generator for `xkserve`: drives an in-process server over
//! loopback with a Zipf-skewed query mix and measures end-to-end
//! throughput — across cache settings, client counts, and (since the
//! event-driven front end) connection disciplines.
//!
//! A pool of distinct two-keyword queries (one low-frequency, one
//! mid-frequency keyword, the paper's Figure 8 workload shape) is drawn
//! with [`QuerySampler`]; each request then picks its query by sampling a
//! rank from [`Zipf`], so a few queries are hot and most are rare —
//! exactly the regime where a result cache pays.
//!
//! Two case families share one envelope
//! (`results/BENCH_server_loadgen.json`):
//!
//! - `cache=on|off/clients=N` — the original cache study: fresh
//!   connection per request, 1..8 clients.
//! - `mode=close|keepalive|pipelined/conns=N` — the keep-alive sweep:
//!   N ∈ {64, 256, 1024} concurrent connections each issuing 8
//!   requests, either one connection per request (`close`), one
//!   persistent connection per client (`keepalive`), or a persistent
//!   connection writing bursts of 8 before reading (`pipelined`).
//!
//! Usage: `server_loadgen [--smoke] [--full] [--requests N] [--pool N]`
//!
//! `--smoke` runs the CI tier against a tiny in-memory corpus: every
//! request must be answered, one answer is differentially checked against
//! a direct `Engine::query`, the full connection-discipline sweep runs,
//! and the server must drain cleanly through the `/shutdown` endpoint.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use xk_bench::trial::{Latency, Suite};
use xk_bench::{corpus, Scale};
use xk_server::{Server, ServerConfig};
use xk_storage::EnvOptions;
use xk_workload::{generate, planted_for_classes, DblpSpec, FrequencyClass, QuerySampler, Zipf};
use xksearch::Engine;

const CLIENT_POINTS: [usize; 4] = [1, 2, 4, 8];
/// Concurrent-connection points for the keep-alive sweep.
const CONN_POINTS: [usize; 3] = [64, 256, 1024];
/// Requests issued per connection in the sweep.
const REQUESTS_PER_CONN: usize = 16;
/// Burst depth in pipelined mode.
const PIPELINE_DEPTH: usize = 8;
const ZIPF_SKEW: f64 = 1.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let scale = if args.iter().any(|a| a == "--full") { Scale::Full } else { Scale::Quick };
    let requests = flag_value(&args, "--requests").unwrap_or(match scale {
        Scale::Full => 2_000,
        Scale::Quick | Scale::Smoke => 600,
    });
    let pool_size = flag_value(&args, "--pool").unwrap_or(32);
    bench(scale, requests, pool_size);
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{flag} takes a number")))
}

/// One blocking HTTP exchange on a fresh `Connection: close` connection;
/// returns the status code, or an error if the connection failed or the
/// response was unreadable.
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(30)))?;
    write!(s, "GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("no status line in {raw:?}")))?;
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    Ok((status, body))
}

/// A persistent HTTP/1.1 client that frames responses by
/// `Content-Length`, so many exchanges (and pipelined bursts) can share
/// one connection.
struct FramedClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FramedClient {
    fn connect(addr: SocketAddr) -> std::io::Result<FramedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(FramedClient { stream, buf: Vec::new() })
    }

    fn send(&mut self, path: &str) -> std::io::Result<()> {
        write!(self.stream, "GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n")
    }

    /// Reads one complete response off the wire; returns the status.
    fn read_response(&mut self) -> std::io::Result<u16> {
        let head_end = loop {
            if let Some(at) = find_double_crlf(&self.buf) {
                break at;
            }
            self.fill()?;
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| std::io::Error::other("non-utf8 head"))?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("no status line in {head:?}")))?;
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| std::io::Error::other("no content length"))?;
        while self.buf.len() < head_end + content_length {
            self.fill()?;
        }
        self.buf.drain(..head_end + content_length);
        Ok(status)
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        match self.stream.read(&mut chunk)? {
            0 => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-response",
            )),
            n => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
        }
    }
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|at| at + 4)
}

/// The query pool: `pool_size` distinct two-keyword queries, each one
/// low-frequency and one mid-frequency keyword, pre-rendered as
/// `/query?kw=a+b` paths.
fn query_pool(
    classes: &[(usize, &FrequencyClass)],
    pool_size: usize,
    seed: u64,
) -> Vec<String> {
    let mut sampler = QuerySampler::new(seed);
    let requirements: Vec<(&FrequencyClass, usize)> =
        classes.iter().map(|(count, class)| (*class, *count)).collect();
    (0..pool_size)
        .map(|_| format!("/query?kw={}", sampler.sample(&requirements).join("+")))
        .collect()
}

struct Point {
    requests: usize,
    ok: u64,
    shed: u64,
    errors: u64,
    elapsed: Duration,
    /// Client-observed per-request latency (connect to full response).
    latency: Latency,
}

/// Fires `requests` Zipf-distributed requests at `addr` from `clients`
/// concurrent connection-per-request clients.
fn run_point(addr: SocketAddr, pool: &[String], clients: usize, requests: usize) -> Point {
    let zipf = Zipf::new(pool.len(), ZIPF_SKEW);
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latency = Latency::new();
    let started = Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients {
            let zipf = &zipf;
            let (ok, shed, errors, latency) = (&ok, &shed, &errors, &latency);
            // Split the request budget evenly, remainder to the low ids.
            let share = requests / clients + usize::from(client < requests % clients);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF ^ (client as u64) << 17);
                for _ in 0..share {
                    let path = &pool[zipf.sample(&mut rng)];
                    let sent = Instant::now();
                    let outcome = http_get(addr, path);
                    latency.record(sent.elapsed());
                    match outcome {
                        Ok((200, _)) => ok.fetch_add(1, Ordering::Relaxed),
                        Ok((503, _)) => shed.fetch_add(1, Ordering::Relaxed),
                        _ => errors.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
    });
    Point {
        requests,
        ok: ok.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        latency,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Close,
    Keepalive,
    Pipelined,
}

impl Mode {
    fn tag(self) -> &'static str {
        match self {
            Mode::Close => "close",
            Mode::Keepalive => "keepalive",
            Mode::Pipelined => "pipelined",
        }
    }
}

/// The keep-alive sweep's inner loop: `conns` concurrent connections,
/// each issuing [`REQUESTS_PER_CONN`] requests under `mode`'s
/// connection discipline. A keep-alive client that loses its connection
/// (idle reap under scheduler starvation) transparently reconnects; a
/// request that cannot be completed at all counts as an error.
fn run_sweep_point(addr: SocketAddr, pool: &[String], conns: usize, mode: Mode) -> Point {
    let zipf = Zipf::new(pool.len(), ZIPF_SKEW);
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latency = Latency::new();
    // All clients block on the barrier until spawned, so the measured
    // window covers traffic, not thread startup.
    let barrier = std::sync::Barrier::new(conns + 1);
    let mut started = Instant::now();
    std::thread::scope(|s| {
        for client in 0..conns {
            let zipf = &zipf;
            let barrier = &barrier;
            let (ok, errors, latency) = (&ok, &errors, &latency);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xF1EE7 ^ (client as u64) << 13);
                let paths: Vec<&String> =
                    (0..REQUESTS_PER_CONN).map(|_| &pool[zipf.sample(&mut rng)]).collect();
                barrier.wait();
                match mode {
                    Mode::Close => {
                        for path in paths {
                            let sent = Instant::now();
                            match http_get(addr, path) {
                                Ok((200, _)) => ok.fetch_add(1, Ordering::Relaxed),
                                _ => errors.fetch_add(1, Ordering::Relaxed),
                            };
                            latency.record(sent.elapsed());
                        }
                    }
                    Mode::Keepalive => {
                        let mut conn = FramedClient::connect(addr).ok();
                        for path in paths {
                            let sent = Instant::now();
                            let mut answered = false;
                            // One reconnect attempt on a torn connection.
                            for _ in 0..2 {
                                let Some(c) = conn.as_mut() else { break };
                                match c.send(path).and_then(|()| c.read_response()) {
                                    Ok(200) => {
                                        answered = true;
                                        break;
                                    }
                                    Ok(_) | Err(_) => conn = FramedClient::connect(addr).ok(),
                                }
                            }
                            latency.record(sent.elapsed());
                            if answered {
                                ok.fetch_add(1, Ordering::Relaxed);
                            } else {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    Mode::Pipelined => {
                        let run = || -> std::io::Result<u64> {
                            let mut c = FramedClient::connect(addr)?;
                            let mut answered = 0;
                            for burst in paths.chunks(PIPELINE_DEPTH) {
                                let sent = Instant::now();
                                for path in burst {
                                    c.send(path)?;
                                }
                                for _ in burst {
                                    if c.read_response()? == 200 {
                                        answered += 1;
                                    }
                                    latency.record(sent.elapsed());
                                }
                            }
                            Ok(answered)
                        };
                        match run() {
                            Ok(answered) => {
                                ok.fetch_add(answered, Ordering::Relaxed);
                                errors.fetch_add(
                                    REQUESTS_PER_CONN as u64 - answered,
                                    Ordering::Relaxed,
                                );
                            }
                            Err(_) => {
                                errors.fetch_add(REQUESTS_PER_CONN as u64, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        barrier.wait();
        started = Instant::now();
    });
    Point {
        requests: conns * REQUESTS_PER_CONN,
        ok: ok.load(Ordering::Relaxed),
        shed: 0,
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        latency,
    }
}

/// Records one measured point as a trial case, using the server's typed
/// metric accessors (not JSON string-matching) for the cache counters.
fn record_case(suite: &mut Suite, id: String, point: &Point, hits: u64, misses: u64) {
    let hit_rate = hits as f64 / ((hits + misses) as f64).max(1.0);
    suite
        .case(id)
        .metric("requests", point.requests as f64)
        .metric("ok", point.ok as f64)
        .metric("shed", point.shed as f64)
        .metric("total_ms", point.elapsed.as_secs_f64() * 1e3)
        .metric("requests_per_sec", point.ok as f64 / point.elapsed.as_secs_f64())
        .metric("cache_hits", hits as f64)
        .metric("cache_misses", misses as f64)
        .metric("hit_rate", hit_rate)
        .latency(&point.latency);
}

/// The keep-alive × connection-count sweep: every mode × conns point on
/// a fresh server, recorded as `mode=X/conns=N` cases. Returns the
/// close-vs-keepalive throughput ratio at the lowest connection point
/// for the caller to report.
fn sweep(suite: &mut Suite, engine: &Arc<Engine>, pool: &[String]) -> f64 {
    let mut keepalive_edge = 0.0;
    for &conns in &CONN_POINTS {
        let mut close_rps = 0.0;
        for mode in [Mode::Close, Mode::Keepalive, Mode::Pipelined] {
            // Best of two trials: with hundreds of client threads on a
            // shared box, a single run's throughput is scheduler
            // roulette; the better trial is the one that measured the
            // server instead of the scheduler.
            let mut best: Option<(Point, u64, u64, u64)> = None;
            for _ in 0..2 {
                // A fresh server per trial: empty result cache, zeroed
                // metrics, no connections lingering from the last mode.
                let server = Server::start(
                    Arc::clone(engine),
                    ServerConfig {
                        addr: "127.0.0.1:0".to_string(),
                        queue_cap: 16 * 1024, // measure throughput, not shedding
                        max_connections: 2 * CONN_POINTS[CONN_POINTS.len() - 1],
                        idle_timeout: Duration::from_secs(30),
                        io_timeout: Duration::from_secs(30),
                        ..ServerConfig::default()
                    },
                )
                .expect("start server");
                let addr = server.local_addr();
                for path in pool {
                    http_get(addr, path).expect("warmup request");
                }
                let warm = server.cache_stats();

                let point = run_sweep_point(addr, pool, conns, mode);

                let stats = server.cache_stats();
                let reuses = server.keepalive_reuses();
                server.shutdown();
                server.join();
                assert_eq!(
                    point.errors, 0,
                    "mode={}/conns={conns}: every request answered",
                    mode.tag()
                );
                if mode != Mode::Close {
                    assert!(
                        reuses as usize >= conns * (REQUESTS_PER_CONN - 1) / 2,
                        "mode={}/conns={conns}: persistent connections must actually be reused \
                         ({reuses} reuses)",
                        mode.tag()
                    );
                }
                let hits = stats.hits - warm.hits;
                let misses = stats.misses - warm.misses;
                let better = match &best {
                    Some((b, ..)) => point.elapsed < b.elapsed,
                    None => true,
                };
                if better {
                    best = Some((point, hits, misses, reuses));
                }
            }
            let (point, hits, misses, reuses) = best.expect("at least one trial ran");

            let rps = point.ok as f64 / point.elapsed.as_secs_f64();
            match mode {
                Mode::Close => close_rps = rps,
                Mode::Keepalive if conns == CONN_POINTS[0] => {
                    keepalive_edge = rps / close_rps.max(1.0);
                }
                _ => {}
            }
            eprintln!(
                "[mode={}] {conns} conns: {rps:>9.1} req/s (p99 {:.2} ms, {reuses} reuses)",
                mode.tag(),
                point.latency.snapshot().quantile_us(0.99) as f64 / 1e3,
            );
            record_case(suite, format!("mode={}/conns={conns}", mode.tag()), &point, hits, misses);
        }
    }
    keepalive_edge
}

fn bench(scale: Scale, requests: usize, pool_size: usize) {
    let c = corpus(scale, std::path::Path::new("bench_cache"));
    let pool = query_pool(&[(1, c.class(10)), (1, c.class(1_000))], pool_size, 0x5E87);
    let engine = Arc::new(c.engine);

    let mut suite = Suite::new("server_loadgen", scale.tag(), 0x5E87);
    suite
        .config("requests", requests as f64)
        .config("pool_size", pool_size as f64)
        .config("zipf_skew", ZIPF_SKEW);
    for (cache_tag, cache_entries) in [("on", 1024usize), ("off", 0usize)] {
        for &clients in &CLIENT_POINTS {
            // A fresh server per point: empty result cache, zeroed metrics.
            let server = Server::start(
                Arc::clone(&engine),
                ServerConfig {
                    addr: "127.0.0.1:0".to_string(),
                    cache_entries,
                    queue_cap: 1024, // measure throughput, not shedding
                    ..ServerConfig::default()
                },
            )
            .expect("start server");
            let addr = server.local_addr();

            // Unmeasured warmup: touch every pool query once so the buffer
            // pool is equally hot for the cache-on and cache-off points
            // (the result cache itself starts cold either way — it is
            // rebuilt with the server).
            for path in &pool {
                http_get(addr, path).expect("warmup request");
            }
            let warm = server.cache_stats();

            let point = run_point(addr, &pool, clients, requests);

            let stats = server.cache_stats();
            let hits = stats.hits - warm.hits;
            let misses = stats.misses - warm.misses;
            server.shutdown();
            server.join();

            assert_eq!(point.errors, 0, "every request must be answered");
            let rps = point.ok as f64 / point.elapsed.as_secs_f64();
            eprintln!(
                "[cache {cache_tag}] {clients} client(s): {rps:>8.1} req/s \
                 (hit rate {:.2}, shed {})",
                hits as f64 / ((hits + misses) as f64).max(1.0),
                point.shed
            );
            record_case(
                &mut suite,
                format!("cache={cache_tag}/clients={clients}"),
                &point,
                hits,
                misses,
            );
        }
    }
    let edge = sweep(&mut suite, &engine, &pool);
    eprintln!("keep-alive vs close at {} conns: {edge:.2}x", CONN_POINTS[0]);
    suite.write().expect("write BENCH_server_loadgen.json");
}

/// CI smoke: a tiny in-memory corpus, a differential spot check, the
/// full connection-discipline sweep, and a clean drain through
/// `/shutdown`.
fn smoke() {
    let classes = [FrequencyClass::new(5, 4), FrequencyClass::new(50, 4)];
    let spec = DblpSpec {
        papers: 400,
        venues: 4,
        years_per_venue: 4,
        vocabulary: 500,
        title_words: 4,
        authors_per_paper: 2,
        planted: planted_for_classes(&classes),
        seed: 0x5110,
    };
    let tree = generate(&spec);
    let engine = Arc::new(
        Engine::build_in_memory(&tree, EnvOptions { page_size: 4096, pool_pages: 1024 })
            .expect("build smoke index"),
    );

    let server = Server::start(
        Arc::clone(&engine),
        ServerConfig { addr: "127.0.0.1:0".to_string(), workers: 2, ..ServerConfig::default() },
    )
    .expect("start server");
    let addr = server.local_addr();

    // Differential spot check: the served result bytes must equal a
    // direct engine call's rendering.
    let kws = [classes[0].keywords[0].as_str(), classes[1].keywords[0].as_str()];
    let (status, body) =
        http_get(addr, &format!("/query?kw={}+{}", kws[0], kws[1])).expect("query");
    assert_eq!(status, 200, "{body}");
    let direct = xk_server::payload::query_result_json(
        &engine.query(&kws, xksearch::Algorithm::Auto).expect("direct query"),
    );
    let served = xk_server::payload::extract_result(&body)
        .unwrap_or_else(|| panic!("no result object in {body}"));
    assert_eq!(served, direct, "served bytes diverge from the engine");

    // A short Zipf burst from 4 clients; every request must be answered.
    let pool = query_pool(&[(1, &classes[0]), (1, &classes[1])], 8, 0x5E87);
    let point = run_point(addr, &pool, 4, 120);
    assert_eq!(point.errors, 0, "smoke: every request must get a response");
    assert_eq!(point.ok + point.shed, 120, "smoke: all requests accounted for");

    let stats = server.cache_stats();
    let answered = server.queries_ok();

    // Clean drain through the endpoint.
    let (status, body) = http_get(addr, "/shutdown").expect("shutdown");
    assert_eq!(status, 200, "{body}");
    let final_metrics = server.join();
    assert!(final_metrics.contains(r#""draining":true"#), "{final_metrics}");
    eprintln!(
        "smoke ok: {answered} queries answered ({} shed), differential check passed, clean drain",
        point.shed
    );

    // The smoke tier emits the same envelope — including the full
    // keep-alive sweep — so CI validates both the artifact shape and
    // the persistent-connection path on every run.
    let mut suite = Suite::new("server_loadgen", "smoke", 0x5110);
    suite.config("requests", 120.0).config("pool_size", 8.0).config("zipf_skew", ZIPF_SKEW);
    record_case(&mut suite, "cache=on/clients=4".to_string(), &point, stats.hits, stats.misses);
    let edge = sweep(&mut suite, &engine, &pool);
    eprintln!("keep-alive vs close at {} conns: {edge:.2}x", CONN_POINTS[0]);
    if edge < 1.2 {
        eprintln!("WARNING: keep-alive edge below 1.2x — investigate before trusting the baseline");
    }
    suite.write().expect("write BENCH_server_loadgen.json");
}

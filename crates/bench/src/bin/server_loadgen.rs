//! HTTP load generator for `xkserve`: drives an in-process server over
//! loopback with a Zipf-skewed query mix and measures end-to-end
//! throughput with the result cache on and off.
//!
//! A pool of distinct two-keyword queries (one low-frequency, one
//! mid-frequency keyword, the paper's Figure 8 workload shape) is drawn
//! with [`QuerySampler`]; each request then picks its query by sampling a
//! rank from [`Zipf`], so a few queries are hot and most are rare —
//! exactly the regime where a result cache pays.
//!
//! Writes `results/server_throughput.csv` with one row per
//! (cache, clients) point:
//!
//! ```text
//! cache,clients,requests,ok,shed,errors,total_ms,requests_per_sec,cache_hits,cache_misses,hit_rate
//! ```
//!
//! Usage: `server_loadgen [--smoke] [--full] [--requests N] [--pool N]`
//!
//! `--smoke` runs a CI-sized check against a tiny in-memory corpus: every
//! request must be answered, one answer is differentially checked against
//! a direct `Engine::query`, and the server must drain cleanly through
//! the `/shutdown` endpoint. No CSV is written in smoke mode.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use xk_bench::{corpus, Scale};
use xk_server::{Server, ServerConfig};
use xk_storage::EnvOptions;
use xk_workload::{generate, planted_for_classes, DblpSpec, FrequencyClass, QuerySampler, Zipf};
use xksearch::Engine;

const CLIENT_POINTS: [usize; 4] = [1, 2, 4, 8];
const ZIPF_SKEW: f64 = 1.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let scale = if args.iter().any(|a| a == "--full") { Scale::Full } else { Scale::Quick };
    let requests = flag_value(&args, "--requests").unwrap_or(match scale {
        Scale::Full => 2_000,
        Scale::Quick => 600,
    });
    let pool_size = flag_value(&args, "--pool").unwrap_or(32);
    bench(scale, requests, pool_size);
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{flag} takes a number")))
}

/// One blocking HTTP exchange; returns the status code, or an error if
/// the connection failed or the response was unreadable.
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(30)))?;
    write!(s, "GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n")?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("no status line in {raw:?}")))?;
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    Ok((status, body))
}

/// Extracts `"key":<u64>` from a flat stretch of a JSON document.
fn metric_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat).unwrap_or_else(|| panic!("no {key} in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {json}"))
}

/// The query pool: `pool_size` distinct two-keyword queries, each one
/// low-frequency and one mid-frequency keyword, pre-rendered as
/// `/query?kw=a+b` paths.
fn query_pool(
    classes: &[(usize, &FrequencyClass)],
    pool_size: usize,
    seed: u64,
) -> Vec<String> {
    let mut sampler = QuerySampler::new(seed);
    let requirements: Vec<(&FrequencyClass, usize)> =
        classes.iter().map(|(count, class)| (*class, *count)).collect();
    (0..pool_size)
        .map(|_| format!("/query?kw={}", sampler.sample(&requirements).join("+")))
        .collect()
}

struct Point {
    requests: usize,
    ok: u64,
    shed: u64,
    errors: u64,
    elapsed: Duration,
}

/// Fires `requests` Zipf-distributed requests at `addr` from `clients`
/// concurrent connections-per-request clients.
fn run_point(addr: SocketAddr, pool: &[String], clients: usize, requests: usize) -> Point {
    let zipf = Zipf::new(pool.len(), ZIPF_SKEW);
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients {
            let zipf = &zipf;
            let (ok, shed, errors) = (&ok, &shed, &errors);
            // Split the request budget evenly, remainder to the low ids.
            let share = requests / clients + usize::from(client < requests % clients);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF ^ (client as u64) << 17);
                for _ in 0..share {
                    let path = &pool[zipf.sample(&mut rng)];
                    match http_get(addr, path) {
                        Ok((200, _)) => ok.fetch_add(1, Ordering::Relaxed),
                        Ok((503, _)) => shed.fetch_add(1, Ordering::Relaxed),
                        _ => errors.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
    });
    Point {
        requests,
        ok: ok.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
    }
}

fn bench(scale: Scale, requests: usize, pool_size: usize) {
    let c = corpus(scale, std::path::Path::new("bench_cache"));
    let pool = query_pool(&[(1, c.class(10)), (1, c.class(1_000))], pool_size, 0x5E87);
    let engine = Arc::new(c.engine);

    std::fs::create_dir_all("results").expect("create results/");
    let mut csv = String::from(
        "cache,clients,requests,ok,shed,errors,total_ms,requests_per_sec,cache_hits,cache_misses,hit_rate\n",
    );
    for (cache_tag, cache_entries) in [("on", 1024usize), ("off", 0usize)] {
        for &clients in &CLIENT_POINTS {
            // A fresh server per point: empty result cache, zeroed metrics.
            let server = Server::start(
                Arc::clone(&engine),
                ServerConfig {
                    addr: "127.0.0.1:0".to_string(),
                    cache_entries,
                    queue_cap: 1024, // measure throughput, not shedding
                    ..ServerConfig::default()
                },
            )
            .expect("start server");
            let addr = server.local_addr();

            // Unmeasured warmup: touch every pool query once so the buffer
            // pool is equally hot for the cache-on and cache-off points
            // (the result cache itself starts cold either way — it is
            // rebuilt with the server).
            for path in &pool {
                http_get(addr, path).expect("warmup request");
            }
            let warm_metrics = server.metrics_json();
            let warm_hits = metric_u64(&warm_metrics, "hits");
            let warm_misses = metric_u64(&warm_metrics, "misses");

            let point = run_point(addr, &pool, clients, requests);

            let metrics = server.metrics_json();
            let hits = metric_u64(&metrics, "hits") - warm_hits;
            let misses = metric_u64(&metrics, "misses") - warm_misses;
            let hit_rate = hits as f64 / ((hits + misses) as f64).max(1.0);
            server.shutdown();
            server.join();

            assert_eq!(point.errors, 0, "every request must be answered");
            let rps = point.ok as f64 / point.elapsed.as_secs_f64();
            eprintln!(
                "[cache {cache_tag}] {clients} client(s): {rps:>8.1} req/s \
                 (hit rate {:.2}, shed {})",
                hit_rate, point.shed
            );
            csv.push_str(&format!(
                "{cache_tag},{clients},{},{},{},{},{:.3},{:.1},{hits},{misses},{hit_rate:.4}\n",
                point.requests,
                point.ok,
                point.shed,
                point.errors,
                point.elapsed.as_secs_f64() * 1e3,
                rps,
            ));
        }
    }
    std::fs::write("results/server_throughput.csv", &csv)
        .expect("write results/server_throughput.csv");
    eprintln!("wrote results/server_throughput.csv");
}

/// CI smoke: a tiny in-memory corpus, a short burst of traffic, a
/// differential spot check, and a clean drain through `/shutdown`.
fn smoke() {
    let classes = [FrequencyClass::new(5, 4), FrequencyClass::new(50, 4)];
    let spec = DblpSpec {
        papers: 400,
        venues: 4,
        years_per_venue: 4,
        vocabulary: 500,
        title_words: 4,
        authors_per_paper: 2,
        planted: planted_for_classes(&classes),
        seed: 0x5110,
    };
    let tree = generate(&spec);
    let engine = Arc::new(
        Engine::build_in_memory(&tree, EnvOptions { page_size: 4096, pool_pages: 1024 })
            .expect("build smoke index"),
    );

    let server = Server::start(
        Arc::clone(&engine),
        ServerConfig { addr: "127.0.0.1:0".to_string(), workers: 2, ..ServerConfig::default() },
    )
    .expect("start server");
    let addr = server.local_addr();

    // Differential spot check: the served result bytes must equal a
    // direct engine call's rendering.
    let kws = [classes[0].keywords[0].as_str(), classes[1].keywords[0].as_str()];
    let (status, body) =
        http_get(addr, &format!("/query?kw={}+{}", kws[0], kws[1])).expect("query");
    assert_eq!(status, 200, "{body}");
    let direct = xk_server::payload::query_result_json(
        &engine.query(&kws, xksearch::Algorithm::Auto).expect("direct query"),
    );
    let served = xk_server::payload::extract_result(&body)
        .unwrap_or_else(|| panic!("no result object in {body}"));
    assert_eq!(served, direct, "served bytes diverge from the engine");

    // A short Zipf burst from 4 clients; every request must be answered.
    let pool = query_pool(&[(1, &classes[0]), (1, &classes[1])], 8, 0x5E87);
    let point = run_point(addr, &pool, 4, 120);
    assert_eq!(point.errors, 0, "smoke: every request must get a response");
    assert_eq!(point.ok + point.shed, 120, "smoke: all requests accounted for");

    // Clean drain through the endpoint.
    let (status, body) = http_get(addr, "/shutdown").expect("shutdown");
    assert_eq!(status, 200, "{body}");
    let final_metrics = server.join();
    assert!(final_metrics.contains(r#""draining":true"#), "{final_metrics}");
    let answered = metric_u64(&final_metrics, "queries_ok");
    eprintln!(
        "smoke ok: {answered} queries answered ({} shed), differential check passed, clean drain",
        point.shed
    );
}

//! Measures what anchoring buys the IL probe loop: page reads per
//! `lm`/`rm` probe against the big list `S_2`, anchored cursor versus
//! fresh root-to-leaf descent, on a cold buffer pool.
//!
//! One document carries every sweep point: keywords `s1a..s1d` planted at
//! frequencies 10, 100, 1 000, 10 000 and `s2` at 100 000. For each
//! `|S_1|` the probe loop replays exactly what Indexed Lookup Eager does —
//! one `deepest_dominator_ranked` call per `S_1` witness against the
//! `S_2` ranked list — with the witnesses pre-materialized so the
//! measured I/O window contains *only* the probes.
//!
//! ```text
//! lookup_locality [--smoke]
//! ```
//!
//! `--smoke` shrinks the corpus for CI. Both tiers emit
//! `results/BENCH_lookup_locality.json` through the shared
//! `xk_bench::trial` envelope — one case per `(|S_1|, mode)` — plus a
//! stdout summary with the anchored/fresh ratios.

use std::time::{Duration, Instant};
use xk_bench::trial::Suite;
use xk_index::{build_disk_index, DiskIndex, SharedEnv};
use xk_slca::{deepest_dominator_ranked, AlgoStats, StreamList};
use xk_storage::{EnvOptions, IoStats, StorageEnv};
use xk_workload::{generate, DblpSpec, Planted};
use xk_xmltree::Dewey;

struct RunConfig {
    papers: usize,
    s1_sizes: Vec<usize>,
    s2_size: usize,
}

struct Measured {
    probes: u64,
    match_lookups: u64,
    io: IoStats,
    elapsed: Duration,
}

/// Replays the IL probe loop for one `S_1` over the `S_2` ranked list and
/// returns the I/O charged to the probes alone (cold pool, witnesses in
/// memory).
fn probe_run(
    env: &SharedEnv,
    index: &DiskIndex,
    witnesses: &[Dewey],
    s2_keyword: &str,
    anchored: bool,
) -> Measured {
    let mut list = index
        .ranked_list(env.clone(), s2_keyword)
        .expect("planted keyword present");
    if anchored {
        list = list.anchored();
    }
    env.with(|e| e.clear_cache()).expect("cache clear");
    let before = env.with(|e| e.stats());
    let start = Instant::now();
    let mut stats = AlgoStats::default();
    let mut sink = 0u64;
    for w in witnesses {
        if let Some(d) = deepest_dominator_ranked(&mut list, w, &mut stats) {
            sink = sink.wrapping_add(d.depth() as u64);
        }
    }
    std::hint::black_box(sink);
    let elapsed = start.elapsed();
    let io = env.with(|e| e.stats()).delta_since(&before);
    if let Some(e) = env.take_error() {
        panic!("storage error during probe run: {e}");
    }
    Measured { probes: witnesses.len() as u64, match_lookups: stats.match_lookups, io, elapsed }
}

fn collect_witnesses(env: &SharedEnv, index: &DiskIndex, keyword: &str) -> Vec<Dewey> {
    let mut stream = index
        .stream_list(env.clone(), keyword)
        .expect("planted keyword present");
    let mut out = Vec::new();
    while let Some(d) = stream.next_node() {
        out.push(d);
    }
    out
}

fn main() {
    let mut smoke = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => smoke = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    let cfg = if smoke {
        RunConfig { papers: 2_500, s1_sizes: vec![10, 100], s2_size: 2_000 }
    } else {
        RunConfig { papers: 100_000, s1_sizes: vec![10, 100, 1_000, 10_000], s2_size: 100_000 }
    };

    let mut planted: Vec<Planted> = cfg
        .s1_sizes
        .iter()
        .enumerate()
        .map(|(i, &f)| Planted { keyword: format!("s1{}", (b'a' + i as u8) as char), frequency: f })
        .collect();
    planted.push(Planted { keyword: "s2".into(), frequency: cfg.s2_size });
    let spec = DblpSpec { papers: cfg.papers, planted, ..DblpSpec::default() };

    eprintln!("generating {} papers ...", cfg.papers);
    let tree = generate(&spec);
    let dir = std::env::temp_dir().join(format!("xk-locality-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("locality.db");
    // A pool big enough that the measured window never evicts: the probe
    // counts then reflect pure access locality, not pool pressure.
    let options = EnvOptions { page_size: 4096, pool_pages: 16_384 };
    eprintln!("building disk index ...");
    let env = StorageEnv::create(&db, options.clone()).unwrap();
    build_disk_index(&env, &tree, false).unwrap();
    env.flush().unwrap();
    drop(env);
    let env = SharedEnv::new(StorageEnv::open(&db, options).unwrap());
    let index = DiskIndex::open(env.env()).unwrap();

    let mut suite =
        Suite::new("lookup_locality", if smoke { "smoke" } else { "full" }, 0x10CA);
    suite
        .config("papers", cfg.papers as f64)
        .config("s2_size", cfg.s2_size as f64)
        .config("page_size", 4096.0)
        .config("pool_pages", 16_384.0);
    println!(
        "{:>8} {:>9} {:>10} {:>14} {:>14} {:>9} {:>9}",
        "|S1|", "|S2|", "mode", "logical_reads", "disk_reads", "rd/lkup", "ratio"
    );
    for (i, &s1) in cfg.s1_sizes.iter().enumerate() {
        let kw = format!("s1{}", (b'a' + i as u8) as char);
        let witnesses = collect_witnesses(&env, &index, &kw);
        assert_eq!(witnesses.len(), s1, "planted |S1| mismatch for {kw}");
        let mut fresh_reads = 0u64;
        for (mode, anchored) in [("fresh", false), ("anchored", true)] {
            let m = probe_run(&env, &index, &witnesses, "s2", anchored);
            let per_lookup = m.io.logical_reads as f64 / m.match_lookups.max(1) as f64;
            suite
                .case(format!("s1={s1}/{mode}"))
                .metric("probes", m.probes as f64)
                .metric("match_lookups", m.match_lookups as f64)
                .metric("logical_reads", m.io.logical_reads as f64)
                .metric("disk_reads", m.io.disk_reads as f64)
                .metric("reads_per_lookup", per_lookup)
                .metric("elapsed_us", m.elapsed.as_micros() as f64);
            let ratio = if anchored && m.io.logical_reads > 0 {
                format!("{:.2}x", fresh_reads as f64 / m.io.logical_reads as f64)
            } else {
                fresh_reads = m.io.logical_reads;
                "-".into()
            };
            println!(
                "{:>8} {:>9} {:>10} {:>14} {:>14} {:>9.2} {:>9}",
                s1, cfg.s2_size, mode, m.io.logical_reads, m.io.disk_reads, per_lookup, ratio
            );
            if anchored {
                assert!(
                    m.io.logical_reads < fresh_reads,
                    "anchored probes must read fewer pages than fresh descents \
                     ({} vs {fresh_reads} at |S1|={s1})",
                    m.io.logical_reads
                );
            }
        }
    }

    suite.write().expect("write BENCH_lookup_locality.json");
    std::fs::remove_dir_all(&dir).unwrap();
}

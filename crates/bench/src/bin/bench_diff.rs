//! `bench_diff` — validate, compare, and render the `BENCH_<suite>.json`
//! artifacts every bench suite emits through `xk_bench::trial`.
//!
//! Subcommands:
//!
//! * `validate <dir>` — load every `BENCH_*.json` and run the schema
//!   gate; CI runs this against the artifacts a `--smoke` sweep emits.
//! * `diff <baseline-dir> <fresh-dir>` — compare fresh runs against the
//!   checked-in baselines, exiting non-zero on any regression past the
//!   thresholds. Runs the comparator self-test first so a broken diff
//!   can never report a clean bill of health.
//! * `self-test` — inject an artificial 2× latency regression into a
//!   synthetic suite and verify the comparator flags it.
//! * `table <dir> [suite...]` — render markdown tables from the JSONs
//!   (the README bench table is generated this way).

use std::path::Path;
use std::process::ExitCode;
use xk_bench::trial::{self, diff, Suite, Thresholds};

const USAGE: &str = "usage: bench_diff <validate DIR | diff BASE_DIR FRESH_DIR [--max-worse R] [--min-keep R] [--abs-floor V] [--count-worse R] | self-test | table DIR [SUITE...]>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    match strs.split_first() {
        Some((&"validate", [dir])) => validate(Path::new(dir)),
        Some((&"diff", rest)) if rest.len() >= 2 => {
            match parse_thresholds(&rest[2..]) {
                Ok(t) => run_diff(Path::new(rest[0]), Path::new(rest[1]), &t),
                Err(e) => {
                    eprintln!("{e}\n{USAGE}");
                    ExitCode::from(2)
                }
            }
        }
        Some((&"self-test", [])) => self_test(),
        Some((&"table", [dir, suites @ ..])) => table(Path::new(dir), suites),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn parse_thresholds(flags: &[&str]) -> Result<Thresholds, String> {
    let mut t = Thresholds::default();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse::<f64>()
            .map_err(|_| format!("{flag} needs a numeric value"))?;
        match *flag {
            "--max-worse" => t.max_worse_ratio = value,
            "--min-keep" => t.min_keep_ratio = value,
            "--abs-floor" => t.abs_floor = value,
            "--count-worse" => t.count_ratio = value,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(t)
}

fn validate(dir: &Path) -> ExitCode {
    let suites = match trial::load_dir(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_diff validate: {e}");
            return ExitCode::FAILURE;
        }
    };
    if suites.is_empty() {
        eprintln!("bench_diff validate: no BENCH_*.json under {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut bad = 0;
    for suite in &suites {
        let errs = suite.validate();
        if errs.is_empty() {
            println!(
                "ok   {} ({} cases, scale={}, seed={:#x})",
                suite.filename(),
                suite.cases.len(),
                suite.scale,
                suite.seed
            );
        } else {
            bad += 1;
            println!("FAIL {}", suite.filename());
            for e in errs {
                println!("     - {e}");
            }
        }
    }
    if bad > 0 {
        eprintln!("bench_diff validate: {bad} invalid artifact(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_diff(base_dir: &Path, fresh_dir: &Path, t: &Thresholds) -> ExitCode {
    // A comparator that cannot see a planted regression must never be
    // trusted to clear a real one.
    if self_test() != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }
    let (baselines, freshes) = match (trial::load_dir(base_dir), trial::load_dir(fresh_dir)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    if baselines.is_empty() {
        eprintln!("bench_diff diff: no baselines under {}", base_dir.display());
        return ExitCode::FAILURE;
    }
    println!(
        "thresholds: regress if worse than {:.2}x (or below {:.2}x for throughput); noise floor {}",
        t.max_worse_ratio, t.min_keep_ratio, t.abs_floor
    );
    let mut failed = false;
    for baseline in &baselines {
        let Some(fresh) = freshes.iter().find(|f| f.suite == baseline.suite) else {
            println!("~ {}: no fresh run (skipped)", baseline.suite);
            continue;
        };
        let report = diff(baseline, fresh, t);
        if let Some(why) = &report.skipped {
            println!("! {}: not comparable — {why}", report.suite);
            failed = true;
            continue;
        }
        println!(
            "= {}: {} metrics checked, {} regression(s), {} improvement(s)",
            report.suite,
            report.checked,
            report.regressions.len(),
            report.improvements.len()
        );
        for id in &report.unmatched {
            println!("  ~ unmatched case: {id}");
        }
        for f in &report.improvements {
            println!(
                "  + {} {}: {} -> {} ({:.2}x)",
                f.case, f.metric, f.baseline, f.fresh, f.ratio
            );
        }
        for f in &report.regressions {
            println!(
                "  ! REGRESSION {} {}: {} -> {} ({:.2}x)",
                f.case, f.metric, f.baseline, f.fresh, f.ratio
            );
        }
        failed |= !report.regressions.is_empty();
    }
    for fresh in &freshes {
        if !baselines.iter().any(|b| b.suite == fresh.suite) {
            println!("~ {}: fresh suite with no baseline (add it to {})", fresh.suite, base_dir.display());
        }
    }
    if failed {
        eprintln!("bench_diff: regressions detected");
        ExitCode::FAILURE
    } else {
        println!("bench_diff: no regressions");
        ExitCode::SUCCESS
    }
}

/// Builds a synthetic baseline, injects a 2× regression into every
/// latency metric, and verifies the comparator reports exactly those.
fn self_test() -> ExitCode {
    let mut baseline = Suite::new("self_test", "smoke", 0x5E1F);
    baseline.config("synthetic", 1.0);
    baseline
        .case("query/hot")
        .metric("queries_per_sec", 50_000.0)
        .metric("p50_us", 120.0)
        .metric("p99_us", 950.0);
    baseline.case("append/sync").metric("appends_per_sec", 800.0).metric("p99_us", 2_400.0);
    let mut fresh = baseline.clone();
    for case in &mut fresh.cases {
        for (key, value) in &mut case.metrics {
            if key.ends_with("_us") {
                *value *= 2.0;
            }
        }
    }
    let report = diff(&baseline, &fresh, &Thresholds::default());
    let latencies = 3;
    let ok = report.skipped.is_none()
        && report.regressions.len() == latencies
        && report.regressions.iter().all(|f| f.metric.ends_with("_us") && f.ratio == 2.0)
        && report.improvements.is_empty();
    if ok {
        println!("self-test: injected 2x latency regression detected ({latencies} findings)");
        ExitCode::SUCCESS
    } else {
        eprintln!("self-test FAILED: comparator missed the injected regression: {report:?}");
        ExitCode::FAILURE
    }
}

fn table(dir: &Path, only: &[&str]) -> ExitCode {
    let suites = match trial::load_dir(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_diff table: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut shown = 0;
    for suite in &suites {
        if !only.is_empty() && !only.contains(&suite.suite.as_str()) {
            continue;
        }
        shown += 1;
        // Union of metric keys across cases, in first-seen order.
        let mut keys: Vec<&str> = Vec::new();
        for case in &suite.cases {
            for (k, _) in &case.metrics {
                if !keys.contains(&k.as_str()) {
                    keys.push(k);
                }
            }
        }
        println!("### `{}` (scale: {})\n", suite.suite, suite.scale);
        println!("| case | {} |", keys.join(" | "));
        println!("|---|{}", "---:|".repeat(keys.len()));
        for case in &suite.cases {
            let cells: Vec<String> = keys
                .iter()
                .map(|k| case.get(k).map_or(String::from("—"), fmt_value))
                .collect();
            println!("| `{}` | {} |", case.id, cells.join(" | "));
        }
        println!();
    }
    if shown == 0 {
        eprintln!("bench_diff table: nothing matched under {}", dir.display());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

//! Measures what the v2 per-page CRC-32 trailer costs on the cold-cache
//! read path — the guard-rail number for the checksum feature.
//!
//! Builds a synthetic index file, then sweeps every page through the
//! buffer pool with verification on and off. Every access is a pool miss
//! (the cache is dropped between rounds), so the difference isolates the
//! checksum computation itself. Deterministic: no RNG, no sampling.
//!
//! ```text
//! checksum_overhead [--smoke] [entries] [rounds]   # defaults: 4000 entries, 7 rounds
//! ```
//!
//! Emits `results/BENCH_checksum_overhead.json` through the shared
//! `xk_bench::trial` envelope (`--smoke` shrinks to 800 entries /
//! 3 rounds and stamps the envelope scale accordingly).

use std::time::{Duration, Instant};
use xk_bench::trial::Suite;
use xk_storage::{EnvOptions, PageId, StorageEnv};
use xk_xmltree::{NodeId, XmlTree};

/// A bibliography-shaped document with repeating but non-trivial text.
fn build_doc(entries: usize) -> XmlTree {
    let mut t = XmlTree::new("bib");
    for i in 0..entries {
        let paper = t.append_element(NodeId::ROOT, "paper");
        let title = t.append_element(paper, "title");
        t.append_text(title, format!("study {i} of topic{}", i % 57));
        let author = t.append_element(paper, "author");
        t.append_text(author, format!("author{} surname{}", i % 211, i % 89));
    }
    t
}

/// One cold sweep: every page fetched exactly once, pool cleared first.
fn cold_sweep(env: &StorageEnv, pages: u32) -> Duration {
    env.clear_cache().unwrap();
    let start = Instant::now();
    for pid in 0..pages {
        env.with_page(PageId(pid), |p| std::hint::black_box(p[0])).unwrap();
    }
    start.elapsed()
}

fn best_of(env: &StorageEnv, pages: u32, rounds: usize) -> Duration {
    (0..rounds).map(|_| cold_sweep(env, pages)).min().unwrap()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let default_entries = if smoke { 800 } else { 4000 };
    let default_rounds = if smoke { 3 } else { 7 };
    let mut args = args.into_iter();
    let entries: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(default_entries);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(default_rounds);

    let dir = std::env::temp_dir().join(format!("xk-ckbench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.db");
    let options = EnvOptions { page_size: 4096, pool_pages: 64 };

    let tree = build_doc(entries);
    let env = StorageEnv::create(&path, options.clone()).unwrap();
    let keywords = xk_index::build_disk_index(&env, &tree, false).unwrap();
    env.flush().unwrap();
    drop(env);

    let env = StorageEnv::open(&path, options).unwrap();
    let pages = env.page_count();
    let bytes = pages as u64 * 4096;
    println!("corpus          : {entries} entries, {keywords} keywords");
    println!("index file      : {pages} pages, {:.1} MiB", bytes as f64 / (1 << 20) as f64);
    println!("rounds          : {rounds} cold sweeps each, best-of reported");

    // Interleave-free: all verified rounds, then all unverified, after one
    // untimed warm-up against OS file-cache effects.
    cold_sweep(&env, pages);
    env.set_verify_checksums(true);
    let on = best_of(&env, pages, rounds);
    env.set_verify_checksums(false);
    let off = best_of(&env, pages, rounds);
    env.set_verify_checksums(true);

    let per_page = |d: Duration| d.as_nanos() as f64 / pages as f64;
    let throughput = |d: Duration| bytes as f64 / (1 << 20) as f64 / d.as_secs_f64();
    println!("checksums ON    : {on:>10.2?}  ({:7.0} ns/page, {:8.1} MiB/s)",
        per_page(on), throughput(on));
    println!("checksums OFF   : {off:>10.2?}  ({:7.0} ns/page, {:8.1} MiB/s)",
        per_page(off), throughput(off));
    let delta = per_page(on) - per_page(off);
    println!(
        "verify overhead : {:.0} ns/page ({:+.1}% on the cold read path)",
        delta,
        delta / per_page(off) * 100.0
    );
    println!(
        "note: \"cold\" pages still come from the OS file cache, the worst case\n\
         for the relative overhead; against a real disk seek (~10^5 ns) the\n\
         absolute ns/page figure is the honest cost."
    );

    let mut suite =
        Suite::new("checksum_overhead", if smoke { "smoke" } else { "full" }, 0);
    suite
        .config("entries", entries as f64)
        .config("rounds", rounds as f64)
        .config("pages", pages as f64)
        .config("page_size", 4096.0);
    for (tag, d) in [("on", on), ("off", off)] {
        suite
            .case(format!("verify={tag}"))
            .metric("ns_per_page", per_page(d))
            .metric("mib_per_sec", throughput(d));
    }
    suite
        .case("verify=delta")
        .metric("overhead_ns_per_page", delta)
        .metric("overhead_pct", delta / per_page(off) * 100.0);
    suite.write().expect("write BENCH_checksum_overhead.json");

    std::fs::remove_dir_all(&dir).unwrap();
}

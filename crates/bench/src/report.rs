//! Result reporting: aligned text tables on stdout plus CSV files under
//! `results/`, one per subfigure, so the series can be re-plotted.

use crate::measure::Measurement;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// One row of a figure: an x-axis label and one measurement per series.
pub struct Row {
    pub x: String,
    pub series: Vec<(String, Measurement)>,
}

/// A rendered experiment: id (e.g. "fig8a_hot"), a human title, and rows.
pub struct Table {
    pub id: String,
    pub title: String,
    pub x_label: String,
    pub rows: Vec<Row>,
}

impl Table {
    /// Renders the aligned text table the harness prints.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} — {} ==", self.id, self.title);
        if self.rows.is_empty() {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let _ = write!(out, "{:<14}", self.x_label);
        for (name, _) in &self.rows[0].series {
            let _ = write!(out, " {:>10} {:>9} {:>9}", format!("{name} ms"), "dskRd", "ops");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "{:<14}", row.x);
            for (_, m) in &row.series {
                let ops = m.stats.match_lookups + m.stats.nodes_scanned;
                let _ = write!(
                    out,
                    " {:>10.3} {:>9.1} {:>9}",
                    m.mean_ms(),
                    m.mean_disk_reads(),
                    ops / m.queries as u64
                );
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes `results/<id>.csv` with one line per (x, series).
    pub fn write_csv(&self, results_dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(results_dir)?;
        let path = results_dir.join(format!("{}.csv", self.id));
        let mut f = std::fs::File::create(&path)?;
        writeln!(
            f,
            "x,series,mean_ms,mean_disk_reads,queries,results,match_lookups,nodes_scanned,lca_computations"
        )?;
        for row in &self.rows {
            for (name, m) in &row.series {
                writeln!(
                    f,
                    "{},{},{:.6},{:.3},{},{},{},{},{}",
                    row.x,
                    name,
                    m.mean_ms(),
                    m.mean_disk_reads(),
                    m.queries,
                    m.results,
                    m.stats.match_lookups,
                    m.stats.nodes_scanned,
                    m.stats.lca_computations,
                )?;
            }
        }
        eprintln!("[report] wrote {}", path.display());
        Ok(())
    }
}

//! Result reporting: aligned text tables on stdout, plus conversion of
//! each subfigure into `xk_bench::trial` cases so every series lands in
//! the one `results/BENCH_figures.json` artifact (the plottable CSV is
//! derived from that JSON by the trial writer).

use crate::measure::Measurement;
use crate::trial::Suite;
use std::fmt::Write as _;

/// One row of a figure: an x-axis label and one measurement per series.
pub struct Row {
    pub x: String,
    pub series: Vec<(String, Measurement)>,
}

/// A rendered experiment: id (e.g. "fig8a_hot"), a human title, and rows.
pub struct Table {
    pub id: String,
    pub title: String,
    pub x_label: String,
    pub rows: Vec<Row>,
}

impl Table {
    /// Renders the aligned text table the harness prints.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} — {} ==", self.id, self.title);
        if self.rows.is_empty() {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let _ = write!(out, "{:<14}", self.x_label);
        for (name, _) in &self.rows[0].series {
            let _ = write!(out, " {:>10} {:>9} {:>9}", format!("{name} ms"), "dskRd", "ops");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "{:<14}", row.x);
            for (_, m) in &row.series {
                let ops = m.stats.match_lookups + m.stats.nodes_scanned;
                let _ = write!(
                    out,
                    " {:>10.3} {:>9.1} {:>9}",
                    m.mean_ms(),
                    m.mean_disk_reads(),
                    ops / m.queries as u64
                );
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Records every (x, series) point of this table as a trial case
    /// (`<id>/x=<x>/<series>`) in the shared figures suite.
    pub fn record(&self, suite: &mut Suite) {
        for row in &self.rows {
            for (name, m) in &row.series {
                let series = name.to_ascii_lowercase();
                suite
                    .case(format!("{}/x={}/{}", self.id, row.x, series))
                    .metric("mean_ms", m.mean_ms())
                    .metric("mean_disk_reads", m.mean_disk_reads())
                    .metric("queries", m.queries as f64)
                    .metric("results", m.results as f64)
                    .metric("match_lookups", m.stats.match_lookups as f64)
                    .metric("nodes_scanned", m.stats.nodes_scanned as f64)
                    .metric("lca_computations", m.stats.lca_computations as f64);
            }
        }
    }
}

//! Shared plumbing for the long-running soak tests
//! (`tests/crash_recovery_soak.rs`, `tests/mixed_soak.rs`): seeded
//! replay and failure reporting.
//!
//! Every soak derives its randomness from one base seed. On failure the
//! harness prints that seed plus the operation schedule that led up to
//! the panic, and the run can be replayed exactly by exporting
//! `XK_SOAK_SEED=<seed>`. `XK_SOAK_SMOKE=1` selects the sampled CI tier.

use std::sync::Mutex;

/// The base seed for a soak run: `XK_SOAK_SEED` when set (decimal or
/// `0x`-prefixed hex), else `default`.
pub fn soak_seed(default: u64) -> u64 {
    let Ok(raw) = std::env::var("XK_SOAK_SEED") else { return default };
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(seed) => {
            eprintln!("[soak] replaying with XK_SOAK_SEED={seed:#x}");
            seed
        }
        Err(_) => panic!("XK_SOAK_SEED={raw:?} is not a decimal or 0x-hex u64"),
    }
}

/// True when `XK_SOAK_SMOKE=1`: run the sampled CI tier instead of the
/// full sweep.
pub fn smoke() -> bool {
    std::env::var("XK_SOAK_SMOKE").is_ok()
}

/// Records the soak's operation schedule and, if the test panics,
/// prints the seed and the schedule so the failure is reproducible.
///
/// The reporter is a drop guard: create it at the top of the test with
/// the run's seed, [`log`](SoakReporter::log) each operation as it is
/// issued (any thread), and call [`finish`](SoakReporter::finish) on
/// clean completion. If the test unwinds instead, `Drop` runs with the
/// schedule still armed and writes the replay report to stderr.
#[derive(Debug)]
pub struct SoakReporter {
    name: &'static str,
    seed: u64,
    ops: Mutex<Vec<String>>,
    armed: bool,
}

/// Cap on the schedule lines replayed on failure; the tail is what
/// names the crash site, and full sweeps can log tens of thousands.
const REPORT_TAIL: usize = 100;

impl SoakReporter {
    pub fn new(name: &'static str, seed: u64) -> SoakReporter {
        SoakReporter { name, seed, ops: Mutex::new(Vec::new()), armed: true }
    }

    /// The seed this run is using (after any `XK_SOAK_SEED` override).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Appends one line to the op schedule. Callable from any thread.
    pub fn log(&self, entry: impl Into<String>) {
        self.ops.lock().unwrap_or_else(|e| e.into_inner()).push(entry.into());
    }

    /// Clean completion: disarms the failure report.
    pub fn finish(mut self) {
        self.armed = false;
    }
}

impl Drop for SoakReporter {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let ops = self.ops.lock().unwrap_or_else(|e| e.into_inner());
        let skipped = ops.len().saturating_sub(REPORT_TAIL);
        eprintln!("\n==== soak failure: {} ====", self.name);
        eprintln!("replay with: XK_SOAK_SEED={:#x} (seed {})", self.seed, self.seed);
        eprintln!("op schedule ({} ops{}):", ops.len(), if skipped > 0 { ", tail shown" } else { "" });
        if skipped > 0 {
            eprintln!("  ... {skipped} earlier ops elided ...");
        }
        for op in ops.iter().skip(skipped) {
            eprintln!("  {op}");
        }
        eprintln!("==== end soak failure report ====");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parses_decimal_and_hex() {
        // Env-var plumbing is covered by the soak tests themselves (the
        // variable is process-global); here just the parse paths via a
        // reporter round-trip.
        let r = SoakReporter::new("unit", 0xABCD);
        assert_eq!(r.seed(), 0xABCD);
        r.log("op 1");
        r.log("op 2");
        assert_eq!(r.ops.lock().unwrap().len(), 2);
        r.finish(); // must not print
    }
}

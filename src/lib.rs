//! # xksearch-repro
//!
//! Workspace root of the XKSearch reproduction (Xu & Papakonstantinou,
//! *Efficient Keyword Search for Smallest LCAs in XML Databases*, SIGMOD
//! 2005). Re-exports the workspace crates under one import path for the
//! examples and the cross-crate integration tests:
//!
//! * [`xmltree`] — Dewey numbers, the tree model, XML parser/serializer;
//! * [`storage`] — pager, buffer pool, B+tree, list chains;
//! * [`index`] — level table, packed Dewey codec, inverted indexes;
//! * [`slca`] — the SLCA/LCA algorithms and the brute-force oracle;
//! * [`workload`] — the DBLP-like generator and query sampler;
//! * [`system`] — the XKSearch engine and its result types.
//!
//! See README.md for a guided tour, DESIGN.md for the system inventory,
//! and EXPERIMENTS.md for the paper-versus-measured evaluation.

pub mod soak;

pub use xk_index as index;
pub use xk_slca as slca;
pub use xk_storage as storage;
pub use xk_workload as workload;
pub use xk_xmltree as xmltree;
pub use xksearch as system;

//! Offline stand-in for the subset of the `loom` crate this workspace
//! uses: [`model`], `thread::spawn`, and `sync::{Arc, Mutex}`.
//!
//! Real loom exhaustively enumerates thread interleavings under the C11
//! memory model. This stand-in does something far cheaper that still
//! catches lock-ordering deadlocks, the only property our model tests
//! assert:
//!
//! - [`model`] runs the closure many times (`XK_LOOM_ITERS`, default 64),
//!   reseeding a per-iteration schedule so runs differ.
//! - [`sync::Mutex::lock`] perturbs the schedule with a seeded number of
//!   `yield_now` calls before acquiring, shaking out orderings that a
//!   plain run-through would never hit.
//! - Acquisition spins on `try_lock` under a watchdog
//!   (`XK_LOOM_WATCHDOG_MS`, default 2000). A lock that stays contended
//!   past the deadline panics with a deadlock diagnosis instead of
//!   hanging the test suite.
//!
//! A test that models an acquisition cycle therefore fails loudly within
//! one watchdog period; a discipline-respecting protocol passes every
//! iteration. The stand-in keeps loom's module layout so swapping the
//! real crate in (when the registry is reachable) is a one-line
//! `Cargo.toml` change — the `#![cfg(loom)]` gating and test bodies do
//! not move.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Seed shared by every thread spawned inside the current model
/// iteration. Threads mix in a per-thread counter so their schedules
/// diverge.
static MODEL_SEED: AtomicU64 = AtomicU64::new(0);
static THREAD_COUNTER: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SCHEDULE: Cell<u64> = const { Cell::new(0) };
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Advances this thread's schedule and yields 0..=3 times. Called at
/// every lock acquisition; the per-iteration reseed in [`model`] makes
/// the yield pattern differ between iterations.
fn perturb() {
    SCHEDULE.with(|s| {
        let mut state = s.get();
        if state == 0 {
            // First acquisition on this thread in this iteration: derive
            // a schedule from the model seed and a unique thread stamp.
            state = (MODEL_SEED.load(Ordering::Relaxed)
                ^ THREAD_COUNTER.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9E37_79B9))
                | 1;
        }
        let draw = splitmix64(&mut state);
        s.set(state);
        for _ in 0..(draw & 3) {
            std::thread::yield_now();
        }
    });
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Runs `f` repeatedly under perturbed schedules. Mirrors
/// `loom::model`'s signature closely enough for our tests.
pub fn model<F: Fn()>(f: F) {
    let iters = env_u64("XK_LOOM_ITERS", 64);
    for i in 0..iters {
        MODEL_SEED.store(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1, Ordering::Relaxed);
        SCHEDULE.with(|s| s.set(0));
        f();
    }
}

pub mod thread {
    pub use std::thread::{yield_now, JoinHandle};

    /// Spawns with a fresh schedule cell; the child derives its own
    /// stream on first lock acquisition.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(f)
    }
}

pub mod sync {
    pub use std::sync::Arc;
    use std::sync::{LockResult, MutexGuard, TryLockError};
    use std::time::{Duration, Instant};

    /// `std::sync::Mutex` with schedule perturbation on `lock` and a
    /// deadlock watchdog instead of unbounded blocking.
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            super::perturb();
            let watchdog = Duration::from_millis(super::env_u64("XK_LOOM_WATCHDOG_MS", 2000));
            let deadline = Instant::now() + watchdog;
            loop {
                match self.0.try_lock() {
                    Ok(guard) => return Ok(guard),
                    Err(TryLockError::Poisoned(_)) => return self.0.lock(),
                    Err(TryLockError::WouldBlock) => {
                        if Instant::now() >= deadline {
                            panic!(
                                "xk-loom: deadlock suspected — lock still contended after {watchdog:?}"
                            );
                        }
                        std::thread::yield_now();
                    }
                }
            }
        }

        pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, TryLockError<MutexGuard<'_, T>>> {
            self.0.try_lock()
        }

        pub fn into_inner(self) -> LockResult<T> {
            self.0.into_inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{Arc, Mutex};

    #[test]
    fn uncontended_lock_works() {
        super::model(|| {
            let m = Mutex::new(0u32);
            *m.lock().unwrap() += 1;
            assert_eq!(*m.lock().unwrap(), 1);
        });
    }

    #[test]
    fn contended_ordered_locks_complete() {
        super::model(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                    super::thread::spawn(move || {
                        let ga = a.lock().unwrap();
                        let mut gb = b.lock().unwrap();
                        *gb += *ga + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*b.lock().unwrap(), 2);
        });
    }

    #[test]
    #[should_panic(expected = "deadlock suspected")]
    fn watchdog_fires_on_a_forced_cycle() {
        std::env::set_var("XK_LOOM_WATCHDOG_MS", "200");
        std::env::set_var("XK_LOOM_ITERS", "1");
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let t = {
            let (a, b, barrier) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
            super::thread::spawn(move || {
                let _ga = a.lock().unwrap();
                barrier.wait();
                let _gb = b.lock().unwrap();
            })
        };
        let _gb = b.lock().unwrap();
        barrier.wait();
        let result = a.lock(); // guaranteed cycle: watchdog must fire
        drop(result);
        t.join().unwrap();
    }
}

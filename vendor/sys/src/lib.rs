//! Offline stand-in for the `libc`/`mio` syscall surface the server's
//! reactor needs: **epoll**, **eventfd**, and **listen** — nothing more.
//!
//! The workspace is std-only and builds without a registry, so the three
//! readiness primitives `std` does not expose are invoked as raw Linux
//! syscalls through `core::arch::asm!`. Each wrapper owns its fd,
//! translates negative return values into [`std::io::Error`] via the
//! kernel's `-errno` convention, and exposes the narrowest safe API the
//! reactor uses:
//!
//! * [`Epoll`] — `epoll_create1` / `epoll_ctl` / `epoll_wait` over
//!   caller-supplied [`RawEvent`] buffers, with a `u64` token per fd.
//! * [`EventFd`] — a nonblocking wakeup fd: any thread [`EventFd::wake`]s,
//!   the reactor sees readiness and [`EventFd::drain`]s.
//! * [`listen_backlog`] — re-`listen(2)` on an already-bound listener to
//!   raise the accept backlog past std's fixed 128 (Linux permits
//!   re-listening to resize the queue).
//!
//! Everything here is Linux-specific by design; the repository's CI and
//! deployment targets are Linux on x86_64/aarch64, and an unsupported
//! target fails loudly at compile time rather than silently degrading.

#[cfg(not(target_os = "linux"))]
compile_error!("xk-sys binds raw Linux syscalls; the reactor front end is Linux-only");

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
compile_error!("xk-sys has syscall tables for x86_64 and aarch64 only");

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Raw syscall entry (per-architecture numbers and calling convention).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const LISTEN: usize = 50;
    pub const EPOLL_WAIT: usize = 232;
    pub const EPOLL_CTL: usize = 233;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const LISTEN: usize = 201;
    /// aarch64 has no plain `epoll_wait`; `epoll_pwait` with a null
    /// sigmask is the same call.
    pub const EPOLL_PWAIT: usize = 22;
    pub const EPOLL_CTL: usize = 21;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
}

/// One raw syscall. Safety: the caller must pass argument values that are
/// valid for the specific syscall (live fds, pointers to suitably-sized
/// buffers); the kernel validates the rest and reports `-errno`.
#[cfg(target_arch = "x86_64")]
// SAFETY: the asm touches only the registers it declares — the six
// argument registers plus rcx/r11, which the `syscall` instruction
// clobbers — and `options(nostack)` promises no stack use. Memory
// safety rests on the caller's contract above: any pointer argument
// must reference a live allocation sized for the specific syscall.
unsafe fn syscall6(n: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize, a6: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n as isize => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        in("r9") a6,
        out("rcx") _,
        out("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(target_arch = "aarch64")]
// SAFETY: `svc 0` preserves everything except x0 (the return value),
// which the asm declares via `inlateout`; x1–x5 and x8 are inputs only
// and `options(nostack)` promises no stack use. Memory safety rests on
// the caller's contract above: any pointer argument must reference a
// live allocation sized for the specific syscall.
unsafe fn syscall6(n: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize, a6: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a1 => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        in("x5") a6,
        options(nostack),
    );
    ret
}

/// Maps the kernel's `-errno` convention into `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

fn close_fd(fd: RawFd) {
    // SAFETY: CLOSE takes a single integer and reads no memory. A stale
    // fd yields EBADF, which is deliberately ignored — a failed close
    // leaves nothing actionable for the caller; the fd is gone (or
    // never was) either way.
    unsafe {
        syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0);
    }
}

// ---------------------------------------------------------------------------
// epoll
// ---------------------------------------------------------------------------

/// `epoll_event.events` bits (uapi/linux/eventpoll.h).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0o2000000;

/// The kernel's `struct epoll_event`. Packed on x86_64 only — exactly the
/// uapi definition (`EPOLL_PACKED` expands to `__attribute__((packed))`
/// on x86_64 and to nothing elsewhere).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct RawEvent {
    events: u32,
    data: u64,
}

impl RawEvent {
    /// The token registered with the fd that became ready.
    pub fn token(&self) -> u64 {
        self.data
    }

    pub fn readable(&self) -> bool {
        let e = self.events;
        e & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }

    pub fn writable(&self) -> bool {
        let e = self.events;
        e & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// The peer hung up or the fd is in an error state — the next read
    /// or write surfaces the specific condition.
    pub fn hangup(&self) -> bool {
        let e = self.events;
        e & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0
    }
}

/// A readiness notification fd (`epoll_create1`), level-triggered.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: EPOLL_CREATE1 takes only the flags word; no memory is
        // read or written.
        let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
        Ok(Epoll { fd: check(ret)? as RawFd })
    }

    fn ctl(&self, op: usize, fd: RawFd, interest: Option<(u64, bool, bool)>) -> io::Result<()> {
        let mut ev = RawEvent::default();
        let ev_ptr = match interest {
            Some((token, read, write)) => {
                let mut events = 0;
                if read {
                    events |= EPOLLIN | EPOLLRDHUP;
                }
                if write {
                    events |= EPOLLOUT;
                }
                ev.events = events;
                ev.data = token;
                &mut ev as *mut RawEvent as usize
            }
            // EPOLL_CTL_DEL ignores the event pointer (and accepts NULL
            // since Linux 2.6.9).
            None => 0,
        };
        // SAFETY: `ev_ptr` is null (DEL, where the kernel ignores it) or
        // points at `ev`, which outlives the call; the kernel copies the
        // struct out before returning, so no reference escapes.
        let ret = unsafe { syscall6(nr::EPOLL_CTL, self.fd as usize, op, fd as usize, ev_ptr, 0, 0) };
        check(ret).map(|_| ())
    }

    /// Registers `fd` under `token` with the given interest set.
    pub fn add(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some((token, read, write)))
    }

    /// Replaces the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some((token, read, write)))
    }

    /// Deregisters `fd`. Closing an fd deregisters it implicitly; this is
    /// for fds that outlive their registration.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Waits for readiness, filling `events` from the front; returns how
    /// many fired. `None` blocks indefinitely; `Some(d)` rounds **up** to
    /// the next millisecond so a 100µs deadline cannot spin at timeout 0.
    /// A signal interruption reports zero events rather than an error.
    pub fn wait(&self, events: &mut [RawEvent], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: isize = match timeout {
            None => -1,
            Some(d) => (d.as_micros().div_ceil(1000)).min(i32::MAX as u128) as isize,
        };
        // SAFETY: the event pointer/length describe the caller's live
        // `&mut [RawEvent]`, which the kernel fills in place up to
        // `events.len()` entries; `RawEvent` is exactly the uapi layout
        // (repr(C), packed on x86_64 where the ABI requires it).
        let ret = unsafe {
            #[cfg(target_arch = "x86_64")]
            let n = syscall6(
                nr::EPOLL_WAIT,
                self.fd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                0,
            );
            #[cfg(target_arch = "aarch64")]
            let n = syscall6(
                nr::EPOLL_PWAIT,
                self.fd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0, // NULL sigmask: plain epoll_wait semantics
                8, // sigsetsize (ignored for a NULL mask)
            );
            n
        };
        match check(ret) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

// ---------------------------------------------------------------------------
// eventfd
// ---------------------------------------------------------------------------

const EFD_NONBLOCK: usize = 0o4000;
const EFD_CLOEXEC: usize = 0o2000000;

/// A nonblocking wakeup fd: writers add to a kernel counter, the reader
/// sees EPOLLIN until the counter is drained. Cross-thread by design —
/// [`EventFd::wake`] is called from worker threads, [`EventFd::drain`]
/// from the reactor.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: EVENTFD2 takes an initial count and the flags word; no
        // memory is read or written.
        let ret = unsafe { syscall6(nr::EVENTFD2, 0, EFD_NONBLOCK | EFD_CLOEXEC, 0, 0, 0, 0) };
        Ok(EventFd { fd: check(ret)? as RawFd })
    }

    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Signals the fd. A full counter (`EAGAIN`) already guarantees the
    /// reader will wake, so it reports success.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: WRITE reads exactly 8 bytes from `one`, a live stack
        // u64 that outlives the call; eventfd requires an 8-byte write.
        let ret = unsafe {
            syscall6(nr::WRITE, self.fd as usize, &one as *const u64 as usize, 8, 0, 0, 0)
        };
        match check(ret) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consumes all pending wakeups (resets the counter to zero).
    pub fn drain(&self) {
        let mut count: u64 = 0;
        // SAFETY: READ writes exactly 8 bytes into `count`, a live stack
        // u64 that outlives the call. One read returns and clears the
        // whole counter; EAGAIN means it was already zero. Either way
        // the fd is quiescent afterwards.
        unsafe {
            syscall6(nr::READ, self.fd as usize, &mut count as *mut u64 as usize, 8, 0, 0, 0);
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

// ---------------------------------------------------------------------------
// listen
// ---------------------------------------------------------------------------

/// Re-issues `listen(2)` on an already-listening socket to resize its
/// accept backlog — std's `TcpListener::bind` hard-codes 128, which a
/// thousand simultaneous connects overflow into SYN retransmits.
pub fn listen_backlog(fd: RawFd, backlog: u32) -> io::Result<()> {
    // SAFETY: LISTEN takes two integers and reads no memory; a bad or
    // non-socket fd reports EBADF/ENOTSOCK through `check`.
    let ret = unsafe { syscall6(nr::LISTEN, fd as usize, backlog as usize, 0, 0, 0, 0) };
    check(ret).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let ep = Epoll::new().unwrap();
        let wake = EventFd::new().unwrap();
        ep.add(wake.raw_fd(), 7, true, false).unwrap();

        // Nothing pending: a short wait times out empty.
        let mut events = [RawEvent::default(); 8];
        let n = ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);

        // Multiple wakes coalesce into one readiness with the token.
        wake.wake().unwrap();
        wake.wake().unwrap();
        let n = ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert!(events[0].readable());
        assert!(!events[0].hangup());

        // Drained: readiness clears (level-triggered, so it would refire
        // if the counter were still nonzero).
        wake.drain();
        let n = ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn epoll_reports_tcp_readability_and_interest_changes() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), 1, true, false).unwrap();

        let client = std::net::TcpStream::connect(addr).unwrap();
        let mut events = [RawEvent::default(); 8];
        let n = ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1, "pending connection makes the listener readable");
        assert_eq!(events[0].token(), 1);

        // Interest can be swapped off and the fd deregistered.
        ep.modify(listener.as_raw_fd(), 1, false, false).unwrap();
        let n = ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "empty interest set reports nothing");
        ep.delete(listener.as_raw_fd()).unwrap();
        drop(client);
    }

    #[test]
    fn listen_backlog_resizes_a_bound_listener() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listen_backlog(listener.as_raw_fd(), 1024).unwrap();
        // Still accepting after the re-listen.
        let addr = listener.local_addr().unwrap();
        let _client = std::net::TcpStream::connect(addr).unwrap();
        let (_conn, _) = listener.accept().unwrap();
    }

    #[test]
    fn bad_fd_reports_errno() {
        let ep = Epoll::new().unwrap();
        let err = ep.add(-1, 0, true, false).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(9), "EBADF: {err}");
    }
}

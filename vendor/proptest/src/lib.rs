//! Offline stand-in for the subset of the `proptest` crate this
//! workspace uses.
//!
//! Each `proptest!` test derives a deterministic base seed from its own
//! name (override with `PROPTEST_SEED=<u64>`), then runs
//! `ProptestConfig::cases` cases (override with `PROPTEST_CASES=<n>`),
//! case `i` using seed `base + i`. A failing case panics with the case
//! number and seed so it can be replayed exactly; there is **no input
//! shrinking** — keep generators small enough that raw failing inputs
//! are readable.
//!
//! Supported strategy surface: integer ranges (`a..b`, `a..=b`, `a..`),
//! tuples up to 4, `Just`, `any::<u8|u16|u32|u64|usize|bool|sample::Index>()`,
//! `collection::{vec, btree_set}`, `sample::{select, Index}`,
//! `prop_map` / `prop_flat_map` / `boxed`, `prop_oneof!`, and the string
//! "regex" strategy limited to the `.{m,n}` shape (arbitrary text of
//! bounded length) that this repository uses.

use std::ops::{Range, RangeFrom, RangeInclusive};

pub mod test_runner {
    //! Deterministic case runner: config, RNG, and error plumbing used by
    //! the [`proptest!`](crate::proptest) macro expansion.

    /// Mirror of `proptest::test_runner::Config` for the knobs we use.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    /// The alias the prelude exports.
    pub type ProptestConfig = Config;

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Effective case count: `PROPTEST_CASES` overrides the config.
    pub fn effective_cases(config: &Config) -> u32 {
        match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => config.cases,
        }
    }

    /// Base seed for a test: `PROPTEST_SEED` if set, else an FNV-1a hash
    /// of the test name — stable across runs and across machines.
    pub fn base_seed(test_name: &str) -> u64 {
        if let Some(seed) = std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()) {
            return seed;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// splitmix64-based deterministic RNG driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed ^ 0x6A09_E667_F3BC_C909 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// A failed `prop_assert*!` — carried as an error so the macro can
    /// attach the case number and seed before panicking.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> TestCaseError {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

use test_runner::TestRng;

/// A source of values for one generated test-case input.
///
/// Unlike the real proptest there is no value tree / shrinking; a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator: the outer value picks the inner strategy.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Object-safe strategy wrapper used by [`Strategy::boxed`] and
/// [`Union`] (`prop_oneof!`).
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// `prop_oneof!`: uniform choice among boxed alternatives.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span as u64) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u128) - (self.start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                self.start + rng.below(span as u64) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// The only "regex" strategies this workspace uses are of the shape
/// `.{m,n}` — arbitrary text with a bounded length. Parse exactly that;
/// reject anything else loudly so a new call site knows to extend this.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!(
                "string strategy {self:?} unsupported by the vendored proptest \
                 (only the `.{{m,n}}` shape is implemented)"
            )
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        // A mix of ASCII, markup-significant characters, and multibyte
        // code points — the shape that exercises an XML parser.
        const ALPHABET: &[char] = &[
            'a', 'b', 'z', 'A', '0', '9', ' ', '\t', '\n', '<', '>', '&', ';', '/', '=', '"',
            '\'', '!', '-', '[', ']', '?', '.', 'é', 'ü', '✓', '中', '\u{7f}',
        ];
        (0..len).map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize]).collect()
    }
}

/// Parse `.{m,n}` → `Some((m, n))`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = rest.split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

pub mod arbitrary {
    //! `any::<T>()` for the handful of types the workspace asks for.

    use super::{test_runner::TestRng, Strategy};

    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy produced by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary_value(rng: &mut TestRng) -> super::sample::Index {
            super::sample::Index::from_raw(rng.next_u64())
        }
    }
}

pub mod sample {
    //! `prop::sample::{Index, select}`.

    use super::{test_runner::TestRng, Strategy};

    /// A deferred index: generated independently of any collection, then
    /// projected onto one with [`Index::index`] / [`Index::get`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Index {
            Index(raw)
        }

        /// Project onto `0..len`. Panics if `len == 0`, like the real one.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }

        /// Project onto a slice.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }

    /// Uniform choice from a fixed set of values.
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    pub fn select<T: Clone, V: Into<Vec<T>>>(values: V) -> Select<T> {
        let values = values.into();
        assert!(!values.is_empty(), "sample::select on empty collection");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }
}

pub mod collection {
    //! `proptest::collection::{vec, btree_set}`.

    use super::{test_runner::TestRng, Strategy};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for generated collections (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicates don't extend the set; bound the attempts so a
            // narrow element domain can't loop forever.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(10) + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// `proptest::prelude::*` — the import surface the tests use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy_exports::*;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Re-exports under the `prop::` pseudo-namespace used by the prelude.
pub mod prop {
    pub use crate::{collection, sample};
}

mod strategy_exports {
    pub use crate::{BoxedStrategy, Just, Strategy, Union};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($left), stringify!($right), left, format!($($fmt)*)
        );
    }};
}

/// The `proptest! { ... }` block: an optional `#![proptest_config(...)]`
/// inner attribute followed by `#[test] fn name(pat in strategy, ...) { body }`
/// items. Each expands to a plain `#[test]` running N deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = $crate::test_runner::effective_cases(&config);
            let base = $crate::test_runner::base_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                let seed = base.wrapping_add(case as u64);
                let mut __proptest_rng = $crate::test_runner::TestRng::new(seed);
                $(
                    let $pat = $crate::Strategy::generate(
                        &$strategy,
                        &mut __proptest_rng,
                    );
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case}/{cases} failed (replay with PROPTEST_SEED={base}): {e}",
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![(0u8..10).prop_map(Op::Push), Just(Op::Pop)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..=4, z in 1u8..) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!(z >= 1);
        }

        #[test]
        fn vec_sizes_respected(v in proptest::collection::vec(0u8..4, 2..5)) {
            prop_assert!((2..5).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn ops_compose((ops, n) in (proptest::collection::vec(op(), 0..12), 0usize..3)) {
            let mut depth = 0i32;
            for o in &ops {
                match o {
                    Op::Push(_) => depth += 1,
                    Op::Pop => depth -= 1,
                }
            }
            prop_assert!(depth.unsigned_abs() as usize <= ops.len() + n);
        }

        #[test]
        fn string_strategy_bounded(s in ".{0,20}") {
            prop_assert!(s.chars().count() <= 20);
        }

        #[test]
        fn index_and_select(idx in any::<prop::sample::Index>(),
                            word in prop::sample::select(&["a", "b", "c"][..])) {
            let v = [10, 20, 30, 40];
            let picked = *idx.get(&v);
            prop_assert!(v.contains(&picked));
            prop_assert!(["a", "b", "c"].contains(&word));
        }

        #[test]
        fn btree_set_dedups(s in proptest::collection::btree_set(0u8..5, 1..5)) {
            prop_assert!(!s.is_empty() && s.len() <= 4);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut rng1 = crate::test_runner::TestRng::new(9);
        let mut rng2 = crate::test_runner::TestRng::new(9);
        let s = proptest::collection::vec(0u64..1000, 5..6);
        assert_eq!(s.generate(&mut rng1), s.generate(&mut rng2));
    }

    // Used by `determinism_across_runs` to mimic call-site paths.
    mod proptest {
        pub use crate::collection;
    }
}

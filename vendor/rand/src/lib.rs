//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: a seedable deterministic generator (`rngs::StdRng`), the
//! [`SeedableRng`] seeding entry point, and the [`RngExt`] convenience
//! methods `random::<f64>()` / `random_range(range)`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — statistically
//! solid for workload generation and property tests, deterministic for a
//! given seed, and dependency-free. It does *not* reproduce the byte
//! stream of the real `StdRng` (which is unspecified between `rand`
//! versions anyway); nothing in this repository depends on the concrete
//! stream, only on determinism.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry point, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring the `rand::Rng` extension
/// methods this workspace calls. Implemented blanket-style for every
/// [`RngCore`], and usable on unsized `R: RngExt + ?Sized` receivers.
pub trait RngExt: RngCore {
    /// Sample a value of a [`StandardSample`] type (`f64` in `[0, 1)`,
    /// full-range integers, `bool`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive integer range.
    /// Panics on an empty range, like the real `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds_inclusive();
        T::sample_between(lo, hi_inclusive, self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types that can be drawn from the "standard" distribution.
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types that support uniform range sampling.
pub trait UniformInt: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi_inclusive: Self, rng: &mut R) -> Self;
    fn step_down(self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                // Widening-multiply range reduction (Lemire); the bias for
                // spans far below 2^64 is immeasurably small, which is all
                // workload generation needs.
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span == 0 || span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full span: raw draw is uniform
                }
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
            fn step_down(self) -> $t {
                self - 1
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T: UniformInt> {
    /// `(lo, hi)` with `hi` inclusive. Panics if the range is empty.
    fn bounds_inclusive(self) -> (T, T);
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn bounds_inclusive(self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample empty range");
        (self.start, self.end.step_down())
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn bounds_inclusive(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        (lo, hi)
    }
}

/// splitmix64: used to expand a single `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but belt and braces:
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.random_range(0u64..1000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.random_range(0u64..1000)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.random_range(0u64..1000)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(5u32..=5);
            assert_eq!(w, 5);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unsized_receiver_compiles() {
        fn draw<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut r = StdRng::seed_from_u64(1);
        let _ = draw(&mut r);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} out of range");
        }
    }
}

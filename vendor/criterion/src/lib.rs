//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses. It runs real timed iterations and reports
//! median / mean wall-clock per iteration, but performs no statistical
//! analysis, saves no baselines, and renders no HTML — it exists so
//! `cargo bench` works in a registry-less environment.
//!
//! Iteration counts: each benchmark is warmed up briefly, then run for
//! `sample_size` samples (default 10) of an adaptively chosen batch size
//! targeting a few milliseconds per sample.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Mirrors `criterion::Throughput` — echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Mirrors `criterion::BenchmarkId::new(name, parameter)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name in `bench_function`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; `iter` runs and times the routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: aim for samples of ≥ ~2ms so timer
        // resolution noise stays below a percent.
        let mut batch = 1u64;
        let batch_target = Duration::from_millis(2);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let took = start.elapsed();
            if took >= batch_target || batch >= 1 << 20 {
                break;
            }
            batch = if took.is_zero() {
                batch * 16
            } else {
                (batch * 2).max((batch_target.as_nanos() / took.as_nanos().max(1)) as u64 * batch)
            };
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn report(name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            let mibps = b as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {mibps:10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / median.as_secs_f64();
            format!("  {eps:10.0} elem/s")
        }
        None => String::new(),
    };
    println!("{name:<50} median {median:>10.2?}  mean {mean:>10.2?}{rate}");
}

/// A named group of benchmarks sharing sample-size / throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut samples = Vec::new();
        f(&mut Bencher { samples: &mut samples, sample_size: self.sample_size });
        report(&full, &mut samples, self.throughput);
        self
    }

    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` passes harness flags plus an optional
        // substring filter; accept and ignore the flags criterion accepts.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--verbose" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        BenchmarkGroup { criterion: self, name, sample_size: 10, throughput: None }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if self.matches(name) {
            let mut samples = Vec::new();
            f(&mut Bencher { samples: &mut samples, sample_size: 10 });
            report(name, &mut samples, None);
        }
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_sum(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0u64..100).sum::<u64>())
        });
        group.bench_with_input("sum_input", &50u64, |b, &n| {
            b.iter(|| (0u64..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { filter: None };
        bench_sum(&mut c);
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }
}
